"""Transaction-load generation (paper Section 4).

* Pages accessed per transaction: Uniform(min_pages, max_pages) = U(1, 250).
* Reference string: *random* — distinct pages drawn uniformly from the
  database; *sequential* — a run of consecutive pages starting at a uniform
  position.
* Write set: a uniformly random subset of the read set, ``write_fraction``
  (20 %) of the pages read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.workload.transaction import Transaction

__all__ = ["WorkloadConfig", "generate_transactions"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a transaction load.

    The hotspot fields extend the paper's uniform model with b/c-rule skew
    (e.g. 0.2/0.8: 80 % of references hit the hottest 20 % of pages) for
    contention studies; both default off, giving the paper's workload.
    """

    n_transactions: int = 60
    min_pages: int = 1
    max_pages: int = 250
    write_fraction: float = 0.2
    sequential: bool = False
    #: Fraction of the database that is "hot" (None = uniform, the paper).
    hotspot_fraction: Optional[float] = None
    #: Probability that a reference lands in the hot region.
    hotspot_probability: float = 0.8

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise ValueError("need at least one transaction")
        if not 1 <= self.min_pages <= self.max_pages:
            raise ValueError(
                f"bad page range [{self.min_pages}, {self.max_pages}]"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(f"write_fraction {self.write_fraction} not in [0, 1]")
        if self.hotspot_fraction is not None and not 0.0 < self.hotspot_fraction < 1.0:
            raise ValueError(
                f"hotspot_fraction {self.hotspot_fraction} not in (0, 1)"
            )
        if not 0.0 <= self.hotspot_probability <= 1.0:
            raise ValueError(
                f"hotspot_probability {self.hotspot_probability} not in [0, 1]"
            )

    def with_overrides(self, **kwargs) -> "WorkloadConfig":
        return replace(self, **kwargs)


def generate_transactions(
    config: WorkloadConfig, db_pages: int, rng: random.Random
) -> List[Transaction]:
    """Generate the transaction load for a database of ``db_pages`` pages."""
    if db_pages < config.max_pages:
        raise ValueError(
            f"database ({db_pages} pages) smaller than the largest "
            f"transaction ({config.max_pages} pages)"
        )
    transactions = []
    for tid in range(config.n_transactions):
        n_pages = rng.randint(config.min_pages, config.max_pages)
        if config.sequential:
            start = _sequential_start(config, db_pages, n_pages, rng)
            reads = tuple(range(start, start + n_pages))
        elif config.hotspot_fraction is not None:
            reads = _hotspot_sample(config, db_pages, n_pages, rng)
        else:
            reads = tuple(rng.sample(range(db_pages), n_pages))
        n_writes = round(config.write_fraction * n_pages)
        writes = frozenset(rng.sample(reads, n_writes)) if n_writes else frozenset()
        transactions.append(
            Transaction(
                tid=tid,
                read_pages=reads,
                write_pages=writes,
                sequential=config.sequential,
            )
        )
    return transactions


def _sequential_start(
    config: WorkloadConfig, db_pages: int, n_pages: int, rng: random.Random
) -> int:
    """Start of a sequential run, biased into the hot region if one exists."""
    limit = db_pages - n_pages
    if config.hotspot_fraction is None:
        return rng.randrange(limit + 1)
    hot_limit = max(0, int(config.hotspot_fraction * db_pages) - n_pages)
    if rng.random() < config.hotspot_probability:
        return rng.randrange(hot_limit + 1)
    return rng.randrange(limit + 1)


def _hotspot_sample(
    config: WorkloadConfig, db_pages: int, n_pages: int, rng: random.Random
):
    """Distinct pages with b/c-rule skew toward the hot prefix."""
    hot_pages = max(n_pages, int(config.hotspot_fraction * db_pages))
    chosen = set()
    while len(chosen) < n_pages:
        if rng.random() < config.hotspot_probability:
            page = rng.randrange(hot_pages)
        else:
            page = rng.randrange(db_pages)
        chosen.add(page)
    reads = list(chosen)
    rng.shuffle(reads)
    return tuple(reads)
