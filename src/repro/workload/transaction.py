"""The transaction object shared by the simulator and the experiments."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

__all__ = ["Transaction", "TransactionStatus"]


class TransactionStatus(enum.Enum):
    """Life-cycle states of a simulated transaction."""

    PENDING = "pending"
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """A transaction modeled by its page-reference behaviour.

    ``read_pages`` is the ordered reference string; ``write_pages`` is the
    subset of those pages the transaction updates (paper: a random 20 %
    subset of the read set).
    """

    tid: int
    read_pages: Tuple[int, ...]
    write_pages: FrozenSet[int]
    sequential: bool = False

    # -- runtime bookkeeping (filled in by the machine) --------------------
    status: TransactionStatus = TransactionStatus.PENDING
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    restarts: int = 0
    #: Simulation time at which the last updated page reached the disk.
    last_durable_write: Optional[float] = None
    #: Scratch area for recovery architectures (e.g. log-processor ids).
    recovery_state: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        extras = self.write_pages - set(self.read_pages)
        if extras:
            raise ValueError(
                f"write set must be a subset of the read set; extras: {sorted(extras)[:5]}"
            )

    @property
    def n_reads(self) -> int:
        return len(self.read_pages)

    @property
    def n_writes(self) -> int:
        return len(self.write_pages)

    @property
    def pages_processed(self) -> int:
        """Pages read plus pages written — the paper's metric denominator."""
        return self.n_reads + self.n_writes

    @property
    def completion_time(self) -> Optional[float]:
        """First-frame-allocation to last-updated-page-on-disk (paper metric)."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def reset_runtime(self) -> None:
        """Clear runtime bookkeeping (used when a transaction restarts)."""
        self.status = TransactionStatus.PENDING
        self.recovery_state = {}

    def __repr__(self) -> str:
        kind = "seq" if self.sequential else "rand"
        return (
            f"<Txn {self.tid} {kind} reads={self.n_reads} "
            f"writes={self.n_writes} {self.status.value}>"
        )
