"""Workload model: transactions described by their page-reference behaviour.

Exactly as in the paper (Section 4), a transaction is modeled by the number
of pages it accesses — Uniform(1, 250) — with either a *random* or a
*sequential* reference string, and a write set that is a random 20 % subset
of its read set.
"""

from repro.workload.generator import WorkloadConfig, generate_transactions
from repro.workload.tracefile import load_trace, save_trace
from repro.workload.transaction import Transaction, TransactionStatus

__all__ = [
    "Transaction",
    "TransactionStatus",
    "WorkloadConfig",
    "generate_transactions",
    "load_trace",
    "save_trace",
]
