"""Saving and loading transaction loads as plain-text trace files.

A trace file pins down a workload exactly — page-by-page — so experiments
can be re-run byte-identically on other machines, diffed between versions,
or hand-edited to construct adversarial cases.  Format: one transaction
per line::

    tid|flags|read pages (comma separated)|write pages (comma separated)

where flags is ``s`` for sequential reference strings, ``r`` for random.
Lines starting with ``#`` are comments.
"""

from __future__ import annotations

from typing import Iterable, List, TextIO, Union

from repro.workload.transaction import Transaction

__all__ = ["load_trace", "save_trace"]


def save_trace(transactions: Iterable[Transaction], destination) -> None:
    """Write transactions to a path or file object."""
    if hasattr(destination, "write"):
        _write(transactions, destination)
    else:
        with open(destination, "w") as handle:
            _write(transactions, handle)


def _write(transactions: Iterable[Transaction], handle: TextIO) -> None:
    handle.write("# repro workload trace v1\n")
    for txn in transactions:
        flags = "s" if txn.sequential else "r"
        reads = ",".join(str(p) for p in txn.read_pages)
        writes = ",".join(str(p) for p in sorted(txn.write_pages))
        handle.write(f"{txn.tid}|{flags}|{reads}|{writes}\n")


def load_trace(source) -> List[Transaction]:
    """Read transactions from a path or file object."""
    if hasattr(source, "read"):
        return _read(source)
    with open(source) as handle:
        return _read(handle)


def _read(handle: TextIO) -> List[Transaction]:
    transactions = []
    for line_no, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 4:
            raise ValueError(f"line {line_no}: expected 4 fields, got {len(parts)}")
        tid_text, flags, reads_text, writes_text = parts
        if flags not in ("s", "r"):
            raise ValueError(f"line {line_no}: unknown flags {flags!r}")
        try:
            tid = int(tid_text)
            reads = tuple(int(p) for p in reads_text.split(",") if p)
            writes = frozenset(int(p) for p in writes_text.split(",") if p)
        except ValueError as exc:
            raise ValueError(f"line {line_no}: {exc}") from exc
        if not reads:
            raise ValueError(f"line {line_no}: transaction reads no pages")
        transactions.append(
            Transaction(
                tid=tid,
                read_pages=reads,
                write_pages=writes,
                sequential=(flags == "s"),
            )
        )
    return transactions
