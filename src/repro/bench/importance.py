"""Per-component importance: which knob mattered, ranked.

The ablation exemplar this subsystem follows scores every component by
the damage its removal does.  For each parameter point that has both the
all-on baseline cell and the single-component-off cell, the relative
delta of the primary metric is computed; the mean over parameter points
is the component's importance, direction-adjusted so a positive
``impact`` always means "this component helps".  Components are ranked
by absolute impact, so the first row of the ``importance`` block in
``BENCH_<name>.json`` answers the reviewer's question — *which knob
mattered?* — without re-running anything.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["component_importance"]


def _rel_delta(baseline: float, ablated: float) -> float:
    denominator = abs(baseline) if baseline else 1.0
    return (ablated - baseline) / denominator


def component_importance(grid, cell_results) -> List[Dict[str, Any]]:
    """Rank ``grid``'s toggles by ablation delta on the primary metric.

    ``cell_results`` is the list of :class:`repro.bench.runner.CellResult`
    for one completed run.  Returns schema-shaped entries sorted by
    absolute impact (ties broken by toggle name); empty when the grid
    declares no toggles or no baseline/one-off pair exists.
    """
    metric = grid.primary_metric
    baselines: Dict[Tuple, float] = {}
    singles: Dict[str, List[Tuple[Tuple, float]]] = {
        toggle.name: [] for toggle in grid.toggles
    }
    for result in cell_results:
        value = result.metrics.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        point = result.cell.params
        if not result.cell.toggles_off:
            baselines[point] = float(value)
        elif len(result.cell.toggles_off) == 1:
            name = result.cell.toggles_off[0]
            if name in singles:
                singles[name].append((point, float(value)))

    entries: List[Dict[str, Any]] = []
    for toggle in grid.toggles:
        paired = [
            (baselines[point], value)
            for point, value in singles[toggle.name]
            if point in baselines
        ]
        if not paired:
            continue
        baseline_mean = sum(base for base, _ in paired) / len(paired)
        ablated_mean = sum(ablated for _, ablated in paired) / len(paired)
        deltas = [_rel_delta(base, ablated) for base, ablated in paired]
        mean_rel_delta = sum(deltas) / len(deltas)
        # Positive impact == removing the component hurts the metric.
        impact = -mean_rel_delta if grid.higher_is_better else mean_rel_delta
        entries.append(
            {
                "component": toggle.name,
                "metric": metric,
                "n_points": len(paired),
                "baseline_mean": round(baseline_mean, 9),
                "ablated_mean": round(ablated_mean, 9),
                "mean_rel_delta": round(mean_rel_delta, 9),
                "impact": round(impact, 9),
            }
        )
    entries.sort(key=lambda entry: (-abs(entry["impact"]), entry["component"]))
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank
    return entries
