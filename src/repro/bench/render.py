"""Terminal rendering for grid results: cells table plus importance."""

from __future__ import annotations

from typing import List

from repro.bench.runner import GridResult
from repro.metrics.report import format_table

__all__ = ["render_grid"]


def _format(value) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_grid(result: GridResult) -> str:
    """Aligned text: one row per cell, metric columns (primary first)."""
    grid = result.grid
    axes = list(grid.parameters)
    metric_names: List[str] = [grid.primary_metric]
    for cell_result in result.cells:
        for name in cell_result.metrics:
            if name not in metric_names:
                metric_names.append(name)
    headers = axes[:]
    if grid.toggles:
        headers.append("components off")
    headers += metric_names
    rows = []
    for cell_result in result.cells:
        params = cell_result.cell.param_dict()
        row = [_format(params[axis]) for axis in axes]
        if grid.toggles:
            row.append(", ".join(cell_result.cell.toggles_off) or "-")
        row += [
            _format(cell_result.metrics[name])
            if name in cell_result.metrics
            else "-"
            for name in metric_names
        ]
        rows.append(row)
    title = grid.title or f"Grid {grid.name}"
    direction = "higher" if grid.higher_is_better else "lower"
    text = format_table(
        headers,
        rows,
        title=f"{title} (seed {grid.seed}, gate: {grid.primary_metric} "
        f"{direction} is better, tolerance {grid.tolerance:.0%})",
    )
    importance = result.importance
    if importance:
        text += "\n\n" + format_table(
            ["rank", "component", "baseline", "ablated", "impact"],
            [
                [
                    entry["rank"],
                    entry["component"],
                    _format(entry["baseline_mean"]),
                    _format(entry["ablated_mean"]),
                    f"{entry['impact']:+.1%}",
                ]
                for entry in importance
            ],
            title=f"Component importance on {grid.primary_metric} "
            "(impact = cost of disabling)",
        )
    wall = result.wall_clock()
    text += f"\n\nwall-clock: {wall['total_ms']:.0f} ms over {len(result.cells)} cells"
    return text
