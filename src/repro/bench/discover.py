"""Grid discovery: find every ``bench_*.py`` grid in a benchmark tree.

The benchmark scripts live outside ``src`` (they are pytest files), so
the CLI imports them by path: the tree's parent lands on ``sys.path``
and each ``bench_*.py`` is imported as ``<package>.<stem>`` — the same
module identity pytest gives it, which keeps grid runners picklable for
the ``--jobs`` fan-out.  Every benchmark module must expose exactly one
:class:`repro.bench.spec.Grid` (the BENCH02 lint rule enforces the
declaration statically; discovery enforces it at run time).
"""

from __future__ import annotations

import glob
import importlib
import os
import sys
from typing import Dict, List, Optional

from repro.bench.spec import BenchSpecError, Grid

__all__ = ["load_grids"]


def _import_bench_module(bench_dir: str, stem: str):
    parent = os.path.dirname(os.path.abspath(bench_dir))
    package = os.path.basename(os.path.abspath(bench_dir))
    if parent not in sys.path:
        sys.path.insert(0, parent)
    return importlib.import_module(f"{package}.{stem}")


def load_grids(
    bench_dir: str, names: Optional[List[str]] = None
) -> Dict[str, Grid]:
    """Import every ``bench_*.py`` under ``bench_dir`` and collect grids.

    Returns ``{grid.name: grid}`` in module-name order.  ``names``
    filters to specific grid names (unknown names raise, so a typo in
    CI fails loudly instead of silently shrinking coverage).
    """
    pattern = os.path.join(bench_dir, "bench_*.py")
    paths = sorted(glob.glob(pattern))
    if not paths:
        raise BenchSpecError(f"no bench_*.py modules under {bench_dir!r}")
    grids: Dict[str, Grid] = {}
    for path in paths:
        stem = os.path.splitext(os.path.basename(path))[0]
        module = _import_bench_module(bench_dir, stem)
        found = [
            value for value in vars(module).values() if isinstance(value, Grid)
        ]
        if len(found) != 1:
            raise BenchSpecError(
                f"{path}: expected exactly one repro.bench Grid at module "
                f"level, found {len(found)}"
            )
        grid = found[0]
        if grid.name in grids:
            raise BenchSpecError(
                f"{path}: duplicate grid name {grid.name!r}"
            )
        grids[grid.name] = grid
    if names:
        unknown = [name for name in names if name not in grids]
        if unknown:
            raise BenchSpecError(
                f"unknown grid names {unknown}; available: {sorted(grids)}"
            )
        grids = {name: grids[name] for name in names}
    return grids
