"""The ``BENCH_<name>.json`` artifact schema, validated by hand.

Artifacts are the machine-readable perf trajectory: one file per grid,
committed at the repo root, diffed by CI on every PR.  A trajectory is
only as trustworthy as its format, so every write and every read goes
through :func:`validate_payload` — a strict, dependency-free structural
check (the same stance as ``repro.trace.validate_chrome_trace``): exact
key sets, typed values, unique run IDs, contiguous importance ranks, and
the primary metric present and numeric in every cell.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bench.spec import ID_HEX_LEN, SCHEMA_VERSION

__all__ = ["BenchSchemaError", "validate_payload"]

_HEX = set("0123456789abcdef")

_TOP_KEYS = {
    "schema_version",
    "name",
    "grid_id",
    "seed",
    "seed_mode",
    "parameters",
    "toggles",
    "toggle_mode",
    "primary_metric",
    "higher_is_better",
    "tolerance",
    "cells",
    "importance",
}
_CELL_KEYS = {"run_id", "params", "toggles_off", "seed", "metrics"}
_CELL_OPTIONAL = {"detail"}
_IMPORTANCE_KEYS = {
    "component",
    "metric",
    "n_points",
    "baseline_mean",
    "ablated_mean",
    "mean_rel_delta",
    "impact",
    "rank",
}

_SCALARS = (str, int, float, bool)


class BenchSchemaError(ValueError):
    """A payload does not conform to the BENCH artifact schema."""


def _fail(path: str, message: str) -> None:
    raise BenchSchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_id(value: Any, path: str) -> None:
    _require(
        isinstance(value, str)
        and len(value) == ID_HEX_LEN
        and set(value) <= _HEX,
        path,
        f"must be a {ID_HEX_LEN}-char lowercase hex id, got {value!r}",
    )


def _check_keys(obj: Dict, required: set, optional: set, path: str) -> None:
    keys = set(obj)
    missing = required - keys
    extra = keys - required - optional
    _require(not missing, path, f"missing keys {sorted(missing)}")
    _require(not extra, path, f"unexpected keys {sorted(extra)}")


def validate_payload(payload: Any) -> int:
    """Validate one artifact payload; returns the cell count.

    Raises :class:`BenchSchemaError` with a JSON-path-style location on
    the first violation.
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _check_keys(payload, _TOP_KEYS, set(), "$")
    _require(
        payload["schema_version"] == SCHEMA_VERSION,
        "$.schema_version",
        f"expected {SCHEMA_VERSION}, got {payload['schema_version']!r}",
    )
    _require(
        isinstance(payload["name"], str) and bool(payload["name"]),
        "$.name",
        "must be a non-empty string",
    )
    _check_id(payload["grid_id"], "$.grid_id")
    _require(
        isinstance(payload["seed"], int) and not isinstance(payload["seed"], bool),
        "$.seed",
        "must be an int",
    )
    _require(
        payload["seed_mode"] in ("shared", "per-cell"),
        "$.seed_mode",
        f"unknown mode {payload['seed_mode']!r}",
    )
    _require(
        payload["toggle_mode"] in ("one-off", "product"),
        "$.toggle_mode",
        f"unknown mode {payload['toggle_mode']!r}",
    )
    parameters = payload["parameters"]
    _require(isinstance(parameters, dict), "$.parameters", "must be an object")
    for axis, values in parameters.items():
        path = f"$.parameters.{axis}"
        _require(isinstance(axis, str) and bool(axis), path, "axis must be named")
        _require(
            isinstance(values, list) and bool(values),
            path,
            "axis needs a non-empty value list",
        )
        for value in values:
            _require(
                isinstance(value, _SCALARS),
                path,
                f"axis values must be scalars, got {value!r}",
            )
    toggles = payload["toggles"]
    _require(isinstance(toggles, list), "$.toggles", "must be a list")
    for toggle in toggles:
        _require(
            isinstance(toggle, str) and bool(toggle),
            "$.toggles",
            f"toggle names must be strings, got {toggle!r}",
        )
    _require(
        len(set(toggles)) == len(toggles), "$.toggles", "duplicate toggle names"
    )
    primary = payload["primary_metric"]
    _require(
        isinstance(primary, str) and bool(primary),
        "$.primary_metric",
        "must be a non-empty string",
    )
    _require(
        isinstance(payload["higher_is_better"], bool),
        "$.higher_is_better",
        "must be a bool",
    )
    _require(
        _is_number(payload["tolerance"]) and payload["tolerance"] >= 0,
        "$.tolerance",
        "must be a number >= 0",
    )

    cells = payload["cells"]
    _require(
        isinstance(cells, list) and bool(cells), "$.cells", "needs at least one cell"
    )
    seen_ids: List[str] = []
    for i, cell in enumerate(cells):
        path = f"$.cells[{i}]"
        _require(isinstance(cell, dict), path, "must be an object")
        _check_keys(cell, _CELL_KEYS, _CELL_OPTIONAL, path)
        _check_id(cell["run_id"], f"{path}.run_id")
        seen_ids.append(cell["run_id"])
        _require(
            isinstance(cell["seed"], int) and not isinstance(cell["seed"], bool),
            f"{path}.seed",
            "must be an int",
        )
        params = cell["params"]
        _require(isinstance(params, dict), f"{path}.params", "must be an object")
        _require(
            set(params) == set(parameters),
            f"{path}.params",
            f"axes {sorted(params)} != declared {sorted(parameters)}",
        )
        for axis, value in params.items():
            _require(
                value in parameters[axis],
                f"{path}.params.{axis}",
                f"value {value!r} not on the declared axis",
            )
        off = cell["toggles_off"]
        _require(isinstance(off, list), f"{path}.toggles_off", "must be a list")
        for name in off:
            _require(
                name in toggles,
                f"{path}.toggles_off",
                f"{name!r} is not a declared toggle",
            )
        metrics = cell["metrics"]
        _require(
            isinstance(metrics, dict) and bool(metrics),
            f"{path}.metrics",
            "needs at least one metric",
        )
        for key, value in metrics.items():
            _require(
                isinstance(key, str) and bool(key),
                f"{path}.metrics",
                "metric names must be strings",
            )
            _require(
                isinstance(value, _SCALARS),
                f"{path}.metrics.{key}",
                f"metric values must be scalars, got {value!r}",
            )
        _require(
            primary in metrics and _is_number(metrics[primary]),
            f"{path}.metrics",
            f"primary metric {primary!r} missing or non-numeric",
        )
    _require(
        len(set(seen_ids)) == len(seen_ids), "$.cells", "duplicate run IDs"
    )

    importance = payload["importance"]
    _require(isinstance(importance, list), "$.importance", "must be a list")
    for i, entry in enumerate(importance):
        path = f"$.importance[{i}]"
        _require(isinstance(entry, dict), path, "must be an object")
        _check_keys(entry, _IMPORTANCE_KEYS, set(), path)
        _require(
            entry["component"] in toggles,
            f"{path}.component",
            f"{entry['component']!r} is not a declared toggle",
        )
        _require(
            entry["metric"] == primary,
            f"{path}.metric",
            "importance is ranked on the primary metric",
        )
        _require(
            isinstance(entry["n_points"], int) and entry["n_points"] >= 1,
            f"{path}.n_points",
            "must be a positive int",
        )
        for key in ("baseline_mean", "ablated_mean", "mean_rel_delta", "impact"):
            _require(_is_number(entry[key]), f"{path}.{key}", "must be a number")
        _require(
            entry["rank"] == i + 1,
            f"{path}.rank",
            f"ranks must be contiguous from 1, got {entry['rank']!r}",
        )
    return len(cells)
