"""``repro.bench``: declarative sweeps with a machine-readable trajectory.

The benchmark zoo (28 ``bench_*`` scripts) declares *what* it sweeps —
parameter axes, component toggles, a seed, a primary metric — and this
package turns the declaration into priced cells with **stable run IDs**,
schema-validated ``BENCH_<name>.json`` artifacts at the repo root, a
per-component **importance ranking**, and a CI **regression gate**
(``repro bench-diff``) that reads the perf trajectory out of git history.

See ``docs/BENCH.md`` for the format, the workflow, and how to add a
benchmark.
"""

from repro.bench.diff import (
    DiffEntry,
    compare_payloads,
    diff_dirs,
    gate,
    render_entries,
)
from repro.bench.discover import load_grids
from repro.bench.importance import component_importance
from repro.bench.render import render_grid
from repro.bench.runner import (
    CellResult,
    GridResult,
    run_grid,
    write_grid_artifacts,
)
from repro.bench.schema import BenchSchemaError, validate_payload
from repro.bench.selftest import SELFTEST_GRID, selftest_runner
from repro.bench.spec import (
    SCHEMA_VERSION,
    BenchSpecError,
    Cell,
    ComponentToggle,
    Grid,
    canonical_json,
    derive_seed,
)

__all__ = [
    "SCHEMA_VERSION",
    "SELFTEST_GRID",
    "BenchSchemaError",
    "BenchSpecError",
    "Cell",
    "CellResult",
    "ComponentToggle",
    "DiffEntry",
    "Grid",
    "GridResult",
    "canonical_json",
    "compare_payloads",
    "component_importance",
    "derive_seed",
    "diff_dirs",
    "gate",
    "load_grids",
    "render_grid",
    "run_grid",
    "selftest_runner",
    "validate_payload",
    "write_grid_artifacts",
]
