"""The trajectory differ: committed baselines vs a fresh run.

Cells are matched by stable run ID, so the differ never guesses which
rows correspond: a spec change produces new IDs, which read as dropped
plus added cells — and dropped coverage *gates*, forcing the author to
refresh the committed baselines in the same PR that changed the spec.
For matched cells the primary metric is compared under the grid's
declared tolerance (CLI-overridable): drift in the bad direction beyond
tolerance is a **regression** and fails the build; drift in the good
direction is reported but passes (the trajectory ratchets through
committed baseline updates, not silently).
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.schema import BenchSchemaError, validate_payload

__all__ = ["DiffEntry", "compare_payloads", "diff_dirs", "gate", "render_entries"]

#: Entry kinds that fail the gate.
GATING_KINDS = ("schema-error", "grid-dropped", "cell-dropped", "regression")


@dataclass
class DiffEntry:
    """One observation from the diff; ``gating`` entries fail the build."""

    grid: str
    kind: str
    message: str
    gating: bool
    rel_delta: Optional[float] = None
    run_id: str = ""
    details: Dict[str, Any] = field(default_factory=dict)


def _entry(grid: str, kind: str, message: str, **kwargs) -> DiffEntry:
    return DiffEntry(grid, kind, message, gating=kind in GATING_KINDS, **kwargs)


def _cell_label(cell: Dict[str, Any]) -> str:
    parts = [f"{axis}={value}" for axis, value in sorted(cell["params"].items())]
    parts += [f"-{name}" for name in cell["toggles_off"]]
    return ", ".join(parts) if parts else "(single cell)"


def compare_payloads(
    name: str,
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[DiffEntry]:
    """Compare two schema-valid payloads of the same grid name."""
    entries: List[DiffEntry] = []
    metric = baseline["primary_metric"]
    higher_is_better = baseline["higher_is_better"]
    allowed = baseline["tolerance"] if tolerance is None else tolerance
    if baseline["grid_id"] != current["grid_id"]:
        entries.append(
            _entry(
                name,
                "spec-changed",
                f"grid spec changed ({baseline['grid_id']} -> "
                f"{current['grid_id']}); cells matched by run ID",
            )
        )
    base_cells = {cell["run_id"]: cell for cell in baseline["cells"]}
    cur_cells = {cell["run_id"]: cell for cell in current["cells"]}
    for run_id, cell in base_cells.items():
        if run_id not in cur_cells:
            entries.append(
                _entry(
                    name,
                    "cell-dropped",
                    f"baseline cell [{_cell_label(cell)}] missing from the "
                    "fresh run — refresh the committed baseline if the spec "
                    "change is intentional",
                    run_id=run_id,
                )
            )
    for run_id, cell in cur_cells.items():
        if run_id not in base_cells:
            entries.append(
                _entry(
                    name,
                    "cell-added",
                    f"new cell [{_cell_label(cell)}] has no baseline yet",
                    run_id=run_id,
                )
            )
    for run_id, base_cell in base_cells.items():
        cur_cell = cur_cells.get(run_id)
        if cur_cell is None:
            continue
        base_value = float(base_cell["metrics"][metric])
        cur_value = float(cur_cell["metrics"][metric])
        denominator = abs(base_value) if base_value else 1.0
        rel_delta = (cur_value - base_value) / denominator
        worse = -rel_delta if higher_is_better else rel_delta
        label = _cell_label(base_cell)
        values = (
            f"{metric}: {base_value:g} -> {cur_value:g} "
            f"({rel_delta:+.1%}, tolerance {allowed:.1%})"
        )
        if worse > allowed:
            entries.append(
                _entry(
                    name,
                    "regression",
                    f"[{label}] {values}",
                    rel_delta=rel_delta,
                    run_id=run_id,
                )
            )
        elif -worse > allowed:
            entries.append(
                _entry(
                    name,
                    "improvement",
                    f"[{label}] {values} — commit the refreshed baseline "
                    "to ratchet the trajectory",
                    rel_delta=rel_delta,
                    run_id=run_id,
                )
            )
        else:
            entries.append(
                _entry(
                    name,
                    "unchanged",
                    f"[{label}] {values}",
                    rel_delta=rel_delta,
                    run_id=run_id,
                )
            )
    return entries


def _load_dir(path: str) -> Tuple[Dict[str, Dict[str, Any]], List[DiffEntry]]:
    """Read every ``BENCH_<name>.json`` under ``path``, validating each."""
    payloads: Dict[str, Dict[str, Any]] = {}
    errors: List[DiffEntry] = []
    for artifact in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        if artifact.endswith(".wallclock.json"):
            continue  # machine-speed sidecar, not a trajectory artifact
        stem = os.path.basename(artifact)[len("BENCH_") : -len(".json")]
        try:
            with open(artifact) as handle:
                payload = json.load(handle)
            validate_payload(payload)
            if payload["name"] != stem:
                raise BenchSchemaError(
                    f"$.name: {payload['name']!r} does not match filename "
                    f"{os.path.basename(artifact)!r}"
                )
        except (OSError, ValueError) as error:
            errors.append(_entry(stem, "schema-error", f"{artifact}: {error}"))
            continue
        payloads[stem] = payload
    return payloads, errors


def diff_dirs(
    baseline_dir: str,
    current_dir: str,
    names: Optional[List[str]] = None,
    tolerance: Optional[float] = None,
) -> List[DiffEntry]:
    """Diff every grid artifact in ``current_dir`` against the baselines."""
    baselines, entries = _load_dir(baseline_dir)
    currents, current_errors = _load_dir(current_dir)
    entries.extend(current_errors)
    if names:
        baselines = {k: v for k, v in baselines.items() if k in names}
        currents = {k: v for k, v in currents.items() if k in names}
        entries = [e for e in entries if e.grid in names]
    for name in sorted(baselines):
        if name not in currents:
            entries.append(
                _entry(
                    name,
                    "grid-dropped",
                    f"baseline BENCH_{name}.json has no fresh artifact in "
                    f"{current_dir} — was the benchmark removed?",
                )
            )
    for name in sorted(currents):
        if name not in baselines:
            entries.append(
                _entry(
                    name,
                    "grid-added",
                    "no committed baseline yet — commit "
                    f"BENCH_{name}.json at the repo root to start its "
                    "trajectory",
                )
            )
    for name in sorted(set(baselines) & set(currents)):
        entries.extend(
            compare_payloads(name, baselines[name], currents[name], tolerance)
        )
    return entries


def gate(entries: List[DiffEntry]) -> bool:
    """True when the trajectory holds (no gating entry)."""
    return not any(entry.gating for entry in entries)


def render_entries(entries: List[DiffEntry], verbose: bool = False) -> str:
    """Human summary: gating findings first, then notices, then counts."""
    lines: List[str] = []
    order = {kind: i for i, kind in enumerate(GATING_KINDS)}
    gating = sorted(
        (e for e in entries if e.gating),
        key=lambda e: (order.get(e.kind, 99), e.grid, e.run_id),
    )
    notices = [
        e
        for e in entries
        if not e.gating and e.kind not in ("unchanged",)
    ]
    for entry in gating:
        lines.append(f"FAIL {entry.kind:<12} {entry.grid}: {entry.message}")
    for entry in notices:
        lines.append(f"note {entry.kind:<12} {entry.grid}: {entry.message}")
    if verbose:
        for entry in entries:
            if entry.kind == "unchanged":
                lines.append(f"  ok {entry.grid}: {entry.message}")
    grids = sorted({entry.grid for entry in entries})
    unchanged = sum(1 for entry in entries if entry.kind == "unchanged")
    lines.append(
        f"{len(grids)} grids compared: {unchanged} cells within tolerance, "
        f"{sum(1 for e in entries if e.kind == 'regression')} regressions, "
        f"{sum(1 for e in entries if e.kind == 'improvement')} improvements, "
        f"{sum(1 for e in entries if e.gating)} gating findings"
    )
    return "\n".join(lines)
