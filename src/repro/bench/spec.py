"""Declarative benchmark grids: parameters x components, stably identified.

The paper's tables are paired sweeps — the same seeded workload run
across machine variants — and the benchmark tree grew 29 hand-rolled
loops re-implementing that shape.  A :class:`Grid` declares it instead:
named parameter axes (the cartesian product gives the sweep points),
:class:`ComponentToggle` entries (components the grid ablates on/off),
and a module-level ``runner`` callable that prices one cell.

Every cell carries a **stable run ID**: the SHA-256 content hash of
(schema version, grid name, cell parameters, toggles off, cell seed).
The ID is a pure function of the spec, so the same cell is the same row
in ``BENCH_<name>.json`` across PRs and machines — that identity is what
lets ``repro bench-diff`` read a perf trajectory out of git history
instead of guessing which rows correspond.

Seeding is declarative too.  ``seed_mode="shared"`` (the default) runs
every cell at the grid seed — the common-random-numbers discipline the
experiment runner already uses, so ablation deltas are paired.
``seed_mode="per-cell"`` derives an independent deterministic seed per
cell from the grid seed and the cell key, for grids whose cells must not
share randomness.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "BenchSpecError",
    "Cell",
    "ComponentToggle",
    "Grid",
    "canonical_json",
    "derive_seed",
]

#: Version of the ``BENCH_<name>.json`` artifact layout.  Version 1 was
#: the ad-hoc ``write_bench_json`` payload (PR 7); version 2 is the grid
#: schema in :mod:`repro.bench.schema`.  Bumping it changes every run ID,
#: which is the point: artifacts across a schema change are not rows of
#: the same trajectory.
SCHEMA_VERSION = 2

_TOGGLE_MODES = ("one-off", "product")
_SEED_MODES = ("shared", "per-cell")
#: Length of run/grid identifiers (hex chars of the SHA-256 digest).
ID_HEX_LEN = 16


class BenchSpecError(ValueError):
    """A grid spec (or a runner's output) violates the bench contract."""


def canonical_json(value: Any) -> str:
    """Minimal, key-sorted JSON — the hashing form of a spec fragment."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _digest(value: Any) -> str:
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def derive_seed(base: int, key: Any) -> int:
    """Deterministic per-cell seed: stable across machines and sessions.

    Hash-derived (not ``hash()``, which is salted per process) so the
    same (grid seed, cell key) always yields the same stream.
    """
    return (int(base) + int(_digest(key)[:8], 16)) % (2**31 - 1)


@dataclass(frozen=True)
class ComponentToggle:
    """One component the grid can switch off to price its contribution."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise BenchSpecError("toggle name must be a non-empty string")


@dataclass(frozen=True)
class Cell:
    """One sweep point: parameter values, components off, seed, run ID."""

    params: Tuple[Tuple[str, Any], ...]
    toggles_off: Tuple[str, ...]
    seed: int
    run_id: str

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def key(self) -> Dict[str, Any]:
        """The JSON identity of this cell inside its grid."""
        return {
            "params": self.param_dict(),
            "toggles_off": list(self.toggles_off),
        }


@dataclass
class Grid:
    """A declarative benchmark: axes x toggles, one runner, one metric.

    ``runner(params, seed)`` prices one cell: ``params`` maps every
    parameter axis to its value for this cell *and* every toggle name to
    a bool (``True`` = component on).  It returns a flat ``{metric:
    value}`` dict — or ``(metrics, detail)`` where ``detail`` is any
    JSON-serializable payload preserved verbatim in the artifact (the
    paper-table benchmarks keep their row dicts there so the rendered
    comparison output survives the port).

    ``primary_metric`` is the number the CI gate watches; ``tolerance``
    is the relative drift it forgives (direction given by
    ``higher_is_better``).
    """

    name: str
    seed: int
    runner: Callable[[Dict[str, Any], int], Any]
    primary_metric: str
    parameters: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    toggles: Sequence[ComponentToggle] = ()
    toggle_mode: str = "one-off"
    seed_mode: str = "shared"
    higher_is_better: bool = False
    tolerance: float = 0.15
    title: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise BenchSpecError("grid name must be a non-empty string")
        if not isinstance(self.seed, int):
            raise BenchSpecError(f"{self.name}: grid seed must be an int")
        if not callable(self.runner):
            raise BenchSpecError(f"{self.name}: runner must be callable")
        if not self.primary_metric:
            raise BenchSpecError(f"{self.name}: primary_metric is required")
        if self.toggle_mode not in _TOGGLE_MODES:
            raise BenchSpecError(
                f"{self.name}: toggle_mode must be one of {_TOGGLE_MODES}"
            )
        if self.seed_mode not in _SEED_MODES:
            raise BenchSpecError(
                f"{self.name}: seed_mode must be one of {_SEED_MODES}"
            )
        if self.tolerance < 0:
            raise BenchSpecError(f"{self.name}: tolerance must be >= 0")
        for axis, values in self.parameters.items():
            if not values:
                raise BenchSpecError(f"{self.name}: axis {axis!r} has no values")
        names = [toggle.name for toggle in self.toggles]
        if len(names) != len(set(names)):
            raise BenchSpecError(f"{self.name}: duplicate toggle names")
        overlap = set(names) & set(self.parameters)
        if overlap:
            raise BenchSpecError(
                f"{self.name}: toggles shadow parameter axes: {sorted(overlap)}"
            )

    # -- identity -----------------------------------------------------------

    def spec_payload(self) -> Dict[str, Any]:
        """The JSON form of the spec (everything but the runner code)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "seed_mode": self.seed_mode,
            "parameters": {
                axis: list(values) for axis, values in self.parameters.items()
            },
            "toggles": [toggle.name for toggle in self.toggles],
            "toggle_mode": self.toggle_mode,
            "primary_metric": self.primary_metric,
            "higher_is_better": self.higher_is_better,
            "tolerance": self.tolerance,
        }

    @property
    def grid_id(self) -> str:
        """Content hash of the spec — changes iff any declared field does."""
        return _digest(self.spec_payload())[:ID_HEX_LEN]

    # -- enumeration --------------------------------------------------------

    def toggle_sets(self) -> List[Tuple[str, ...]]:
        """Toggle-off combinations, all-on baseline first, declared order."""
        names = [toggle.name for toggle in self.toggles]
        if not names:
            return [()]
        if self.toggle_mode == "one-off":
            return [()] + [(name,) for name in names]
        combos: List[Tuple[str, ...]] = []
        for bits in itertools.product((False, True), repeat=len(names)):
            combos.append(
                tuple(name for name, off in zip(names, bits) if off)
            )
        return combos

    def cells(self) -> List[Cell]:
        """Every sweep point, in deterministic declaration order."""
        axes = list(self.parameters.items())
        out: List[Cell] = []
        for values in itertools.product(*(list(v) for _, v in axes)):
            params = tuple(zip((axis for axis, _ in axes), values))
            for toggles_off in self.toggle_sets():
                key = {
                    "grid": self.name,
                    "params": dict(params),
                    "toggles_off": list(toggles_off),
                }
                if self.seed_mode == "shared":
                    seed = self.seed
                else:
                    seed = derive_seed(self.seed, key)
                run_id = _digest(
                    {"schema_version": SCHEMA_VERSION, "seed": seed, **key}
                )[:ID_HEX_LEN]
                out.append(Cell(params, toggles_off, seed, run_id))
        return out

    def run_params(self, cell: Cell) -> Dict[str, Any]:
        """The dict the runner sees: axis values plus toggle booleans."""
        params = cell.param_dict()
        for toggle in self.toggles:
            params[toggle.name] = toggle.name not in cell.toggles_off
        return params
