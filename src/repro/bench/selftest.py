"""A tiny closed-form grid that exercises every subsystem feature.

Used by the test suite (run-ID stability, serial-vs-jobs byte identity,
importance ranking, diff round trips) and available as a cheap smoke
grid.  The "workload" is arithmetic over the cell seed — deterministic,
instant, and shaped so both toggles have a measurable, differently-sized
effect: ``batching`` saves 40 % of the page cost, ``cache`` saves 20 %
of the fixed cost, so the importance ranking is predictable.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.bench.spec import ComponentToggle, Grid

__all__ = ["SELFTEST_GRID", "selftest_runner"]


def selftest_runner(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """Closed-form cost model: pages x mode, discounted by components."""
    per_page = 2.0 if params["mode"] == "fast" else 3.0
    if not params["batching"]:
        per_page *= 1.4
    fixed = 50.0 + (seed % 7)
    if not params["cache"]:
        fixed *= 1.2
    cost_ms = fixed + per_page * params["pages"]
    return {
        "cost_ms": round(cost_ms, 6),
        "throughput": round(1000.0 / cost_ms, 6),
        "pages": float(params["pages"]),
    }


SELFTEST_GRID = Grid(
    name="selftest",
    title="Bench subsystem selftest (closed-form cost model)",
    seed=1985,
    runner=selftest_runner,
    parameters={"mode": ["fast", "slow"], "pages": [10, 50]},
    toggles=(
        ComponentToggle("batching", "batch page writes"),
        ComponentToggle("cache", "keep the fixed-cost cache warm"),
    ),
    toggle_mode="one-off",
    seed_mode="per-cell",
    primary_metric="cost_ms",
    higher_is_better=False,
    tolerance=0.10,
)
