"""Execute a grid — serially or fanned out — into a schema-valid artifact.

``run_grid`` prices every cell through the grid's runner, serially or
over worker processes via :func:`repro.jobs.map_jobs`.  The deterministic
payload (:meth:`GridResult.canonical_json`) is byte-identical either way:
wall-clock is measured per cell but kept *out* of the canonical artifact
(it lands in a ``.wallclock.json`` sidecar), because a trajectory that
mixes simulated metrics with machine-speed noise cannot be diffed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.importance import component_importance
from repro.bench.schema import validate_payload
from repro.bench.spec import BenchSpecError, Cell, Grid
from repro.jobs import map_jobs

__all__ = ["CellResult", "GridResult", "run_grid", "write_grid_artifacts"]

_SCALARS = (str, int, float, bool)


@dataclass
class CellResult:
    """One priced cell: the spec point, its metrics, optional detail."""

    cell: Cell
    metrics: Dict[str, Any]
    detail: Optional[Any]
    wall_ms: float

    def metric(self, name: str) -> Any:
        if name not in self.metrics:
            raise KeyError(
                f"cell {self.cell.run_id} has no metric {name!r} "
                f"(has: {sorted(self.metrics)})"
            )
        return self.metrics[name]


@dataclass
class GridResult:
    """A completed grid run: cells in enumeration order, plus importance."""

    grid: Grid
    cells: List[CellResult]

    # -- lookups ------------------------------------------------------------

    def cell(self, toggles_off: Tuple[str, ...] = (), **params) -> CellResult:
        """The cell at a parameter point (baseline toggles by default)."""
        wanted_off = tuple(toggles_off)
        matches = [
            result
            for result in self.cells
            if result.cell.toggles_off == wanted_off
            and all(
                result.cell.param_dict().get(axis) == value
                for axis, value in params.items()
            )
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{self.grid.name}: {len(matches)} cells match "
                f"params={params} toggles_off={wanted_off}"
            )
        return matches[0]

    def metric(
        self, name: Optional[str] = None, toggles_off: Tuple[str, ...] = (), **params
    ) -> Any:
        """One metric value (the primary metric by default)."""
        return self.cell(toggles_off, **params).metric(
            name or self.grid.primary_metric
        )

    @property
    def importance(self) -> List[Dict[str, Any]]:
        return component_importance(self.grid, self.cells)

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The deterministic artifact body (no wall-clock)."""
        payload = self.grid.spec_payload()
        payload["grid_id"] = self.grid.grid_id
        payload["cells"] = [
            {
                "run_id": result.cell.run_id,
                "params": result.cell.param_dict(),
                "toggles_off": list(result.cell.toggles_off),
                "seed": result.cell.seed,
                "metrics": result.metrics,
                **({"detail": result.detail} if result.detail is not None else {}),
            }
            for result in self.cells
        ]
        payload["importance"] = self.importance
        return payload

    def canonical_json(self) -> str:
        """Validated, key-sorted, indented JSON — the committed artifact."""
        payload = self.to_payload()
        validate_payload(payload)
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def wall_clock(self) -> Dict[str, Any]:
        """Machine-speed sidecar: per-cell and total wall milliseconds."""
        return {
            "name": self.grid.name,
            "total_ms": round(sum(result.wall_ms for result in self.cells), 3),
            "cells": {
                result.cell.run_id: round(result.wall_ms, 3)
                for result in self.cells
            },
        }


def _execute_cell(task) -> Tuple[Dict[str, Any], Optional[Any], float]:
    """Price one cell (module-level so ``map_jobs`` can pickle it)."""
    runner, run_params, seed = task
    start = time.perf_counter()  # reprolint: disable-line=DET01
    outcome = runner(run_params, seed)
    wall_ms = (time.perf_counter() - start) * 1000.0  # reprolint: disable-line=DET01
    if isinstance(outcome, tuple):
        if len(outcome) != 2:
            raise BenchSpecError(
                "runner must return metrics or (metrics, detail), "
                f"got a {len(outcome)}-tuple"
            )
        metrics, detail = outcome
    else:
        metrics, detail = outcome, None
    return metrics, detail, wall_ms


def _check_metrics(grid: Grid, cell: Cell, metrics: Any) -> None:
    if not isinstance(metrics, dict) or not metrics:
        raise BenchSpecError(
            f"{grid.name}: runner returned {type(metrics).__name__} for cell "
            f"{cell.run_id}; need a non-empty metrics dict"
        )
    for key, value in metrics.items():
        if not isinstance(key, str) or not isinstance(value, _SCALARS):
            raise BenchSpecError(
                f"{grid.name}: metric {key!r}={value!r} in cell {cell.run_id} "
                "is not a scalar"
            )
    primary = metrics.get(grid.primary_metric)
    if not isinstance(primary, (int, float)) or isinstance(primary, bool):
        raise BenchSpecError(
            f"{grid.name}: primary metric {grid.primary_metric!r} missing or "
            f"non-numeric in cell {cell.run_id} (metrics: {sorted(metrics)})"
        )


def run_grid(grid: Grid, jobs: int = 1) -> GridResult:
    """Price every cell of ``grid``; ``jobs > 1`` fans out over processes.

    The runner and its arguments must be picklable for the parallel path
    (module-level functions, scalar params) — which every discovered
    benchmark grid satisfies by construction.  Output is byte-identical
    to the serial run.
    """
    cells = grid.cells()
    tasks = [(grid.runner, grid.run_params(cell), cell.seed) for cell in cells]
    raw = map_jobs(_execute_cell, tasks, jobs=jobs)
    results: List[CellResult] = []
    for cell, (metrics, detail, wall_ms) in zip(cells, raw):
        _check_metrics(grid, cell, metrics)
        results.append(CellResult(cell, metrics, detail, wall_ms))
    return GridResult(grid, results)


def write_grid_artifacts(
    result: GridResult,
    output_dir: str,
    baseline_dir: Optional[str] = None,
) -> List[str]:
    """Write ``BENCH_<name>.json`` (validated) plus the wall-clock sidecar.

    The canonical artifact goes to ``output_dir`` and, when
    ``baseline_dir`` is given, byte-identically to the baseline location
    (the repo root, where the committed trajectory lives).  Returns the
    written artifact paths in order.
    """
    text = result.canonical_json()
    filename = f"BENCH_{result.grid.name}.json"
    os.makedirs(output_dir, exist_ok=True)
    paths = [os.path.join(output_dir, filename)]
    if baseline_dir is not None:
        os.makedirs(baseline_dir, exist_ok=True)
        paths.append(os.path.join(baseline_dir, filename))
    for path in paths:
        with open(path, "w") as handle:
            handle.write(text)
    sidecar = os.path.join(
        output_dir, f"BENCH_{result.grid.name}.wallclock.json"
    )
    with open(sidecar, "w") as handle:
        json.dump(result.wall_clock(), handle, sort_keys=True, indent=2)
        handle.write("\n")
    return paths
