"""Tuning parallel logging: how many log disks, and which selection policy?

Reproduces the decision the paper's Table 3 supports, on an update-heavy
"teller" workload: a fast machine (75 query processors, 2 parallel-access
data disks, 150 cache frames, sequential transactions) with *physical*
logging — the regime where one log disk finally saturates.  The sweep shows

* one log disk is plenty for the baseline machine (utilization ~2 %),
* the fast machine saturates one log disk and recovers with more,
* cyclic / random / qp-mod selection are comparable; txn-mod is the loser
  when few transactions run concurrently.

Run:  python examples/parallel_logging_tuning.py
"""

from repro.experiments import CONFIGURATIONS, ExperimentSettings, run_configuration
from repro.experiments.tables import TABLE3_MACHINE
from repro.core import LoggingConfig, LogMode, ParallelLoggingArchitecture, SelectionPolicy
from repro.metrics import format_table


def main() -> None:
    settings = ExperimentSettings(n_transactions=20)

    print("Step 1: the baseline machine does not need a second log disk.")
    baseline = run_configuration(
        CONFIGURATIONS["conventional-random"],
        lambda: ParallelLoggingArchitecture(LoggingConfig()),
        settings,
    )
    print(
        f"  conventional-random, logical logging, 1 log disk: "
        f"{baseline.execution_time_per_page:.1f} ms/page, "
        f"log-disk utilization {baseline.utilization('log_disks'):.2f}\n"
    )

    print("Step 2: the fast machine with physical logging (Table 3 testbed).")
    config = CONFIGURATIONS["parallel-sequential"]
    rows = []
    for n_disks in (1, 2, 3, 4, 5):
        row = [n_disks]
        for policy in (
            SelectionPolicy.CYCLIC,
            SelectionPolicy.RANDOM,
            SelectionPolicy.QP_MOD,
            SelectionPolicy.TXN_MOD,
        ):
            result = run_configuration(
                config,
                lambda: ParallelLoggingArchitecture(
                    LoggingConfig(
                        n_log_processors=n_disks,
                        mode=LogMode.PHYSICAL,
                        selection=policy,
                    )
                ),
                settings,
                machine_overrides=TABLE3_MACHINE,
            )
            row.append(round(result.execution_time_per_page, 2))
        rows.append(row)
    bare = run_configuration(
        config, None, settings, machine_overrides=TABLE3_MACHINE
    )
    rows.append(["w/o log"] + [round(bare.execution_time_per_page, 2)] * 4)
    print(
        format_table(
            ["log disks", "cyclic", "random", "qp_mod", "txn_mod"],
            rows,
            title="Execution time per page (ms) — 75 QPs, parallel disks",
        )
    )
    print(
        "\nReading the table: one log disk is the bottleneck; 3+ disks\n"
        "approach the no-logging floor; txn_mod stays worse because only a\n"
        "few transactions run concurrently and each funnels its whole log\n"
        "stream to one processor."
    )


if __name__ == "__main__":
    main()
