"""Quickstart: simulate the paper's database machine with parallel logging.

Builds the baseline multiprocessor-cache machine (25 query processors,
100 x 4 KB cache frames, 2 IBM-3350-class data disks), attaches the
parallel-logging recovery architecture, runs a small transaction load, and
prints the two metrics the paper reports — execution time per page and
transaction completion time.

Run:  python examples/quickstart.py
"""

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.sim import RandomStreams


def main() -> None:
    machine_config = MachineConfig()  # the paper's baseline testbed
    workload_config = WorkloadConfig(n_transactions=20)

    transactions = generate_transactions(
        workload_config,
        machine_config.db_pages,
        RandomStreams(7).stream("workload"),
    )

    architecture = ParallelLoggingArchitecture(LoggingConfig(n_log_processors=1))
    machine = DatabaseMachine(machine_config, architecture)
    result = machine.run(transactions)

    print(result.summary())
    print()
    print(f"log pages written      : {result.counter('log_pages_written')}")
    print(f"log fragments shipped  : {result.counter('log_fragments')}")
    print(
        "avg pages blocked on WAL: "
        f"{result.averages['blocked_pages']:.1f} "
        "(the paper reports fewer than 5)"
    )


if __name__ == "__main__":
    main()
