"""Crash-recovery walkthrough: the paper's algorithms actually recovering.

Drives the functional storage engine through a banking-style scenario —
concurrent transfers, a page stolen to disk mid-transaction, a crash at the
worst moment — under three recovery managers:

1. distributed write-ahead logging (N independent logs, never merged);
2. shadow page tables (atomic root swap);
3. no-undo overwriting (scratch ring + committed-transaction list).

Each prints what is on stable storage before and after restart, so you can
see redo, undo, and root-swap recovery doing their work.

Run:  python examples/crash_recovery_demo.py
"""

from repro.storage import (
    DistributedWalManager,
    OverwriteVariant,
    OverwritingManager,
    ShadowPageTableManager,
)

ALICE, BOB, CAROL = 1, 2, 3


def show_balances(manager, label: str) -> None:
    balances = {
        name: manager.read_committed(page).decode() or "(empty)"
        for name, page in (("alice", ALICE), ("bob", BOB), ("carol", CAROL))
    }
    print(f"  {label:<28} {balances}")


def seed_accounts(manager) -> None:
    tid = manager.begin()
    manager.write(tid, ALICE, b"100")
    manager.write(tid, BOB, b"100")
    manager.write(tid, CAROL, b"100")
    manager.commit(tid)


def crash_scenario(manager, steal: bool = False) -> None:
    """A committed transfer, then a crash mid-way through a second one."""
    seed_accounts(manager)
    show_balances(manager, "after initial deposits")

    # Transfer 1 (commits): alice -> bob, 30.
    t1 = manager.begin()
    manager.write(t1, ALICE, b"70")
    manager.write(t1, BOB, b"130")
    manager.commit(t1)
    show_balances(manager, "after committed transfer")

    # Transfer 2 (never commits): bob -> carol, 50.
    t2 = manager.begin()
    manager.write(t2, BOB, b"80")
    manager.write(t2, CAROL, b"150")
    if steal:
        # The buffer manager steals the dirty page: uncommitted data
        # reaches the disk before the crash.
        manager.flush_page(BOB)
        print("  (page 'bob' stolen to disk with uncommitted balance 80)")

    print("  *** CRASH ***")
    manager.crash()
    manager.recover()
    show_balances(manager, "after restart")
    assert manager.read_committed(ALICE) == b"70"
    assert manager.read_committed(BOB) == b"130"
    assert manager.read_committed(CAROL) == b"100"
    print("  atomicity + durability verified")


def main() -> None:
    print("=== Distributed WAL (3 logs, restart without merging) ===")
    wal = DistributedWalManager(n_logs=3)
    crash_scenario(wal, steal=True)
    # Fuzzy checkpointing: new activity accumulates records across the three
    # logs; a checkpoint truncates everything already reflected on disk
    # without quiescing the still-active transaction.
    for _ in range(3):
        tid = wal.begin()
        wal.write(tid, ALICE, b"70")
        wal.commit(tid)
    active = wal.begin()
    wal.write(active, CAROL, b"60")
    print(f"  log record counts before checkpoint: {wal.log_lengths()}")
    wal.checkpoint(flush=True)
    print(
        f"  log record counts after fuzzy checkpoint "
        f"(one txn still active): {wal.log_lengths()}"
    )
    wal.abort(active)

    print()
    print("=== Shadow page table (atomic root swap) ===")
    crash_scenario(ShadowPageTableManager())

    print()
    print("=== No-undo overwriting (scratch ring) ===")
    crash_scenario(OverwritingManager(OverwriteVariant.NO_UNDO))

    print()
    print("All three recovery algorithms restored the same committed state.")


if __name__ == "__main__":
    main()
