"""A crash-safe ledger on the record layer — same app, any recovery scheme.

The storage engine's heap/table layer is recovery-agnostic: this example
runs an identical banking application over the distributed WAL, shadow
page tables, and no-undo overwriting, crashes it at the worst moment each
time, and checks that every manager restores the same consistent ledger.

This is the "downstream user" view of the paper: the recovery architecture
is a pluggable policy underneath an unchanged application.

Run:  python examples/bank_ledger.py
"""

from repro.storage import (
    Database,
    DistributedWalManager,
    OverwriteVariant,
    OverwritingManager,
    ShadowPageTableManager,
)

MANAGERS = {
    "distributed WAL (3 logs)": lambda: DistributedWalManager(n_logs=3),
    "shadow page table": ShadowPageTableManager,
    "no-undo overwriting": lambda: OverwritingManager(OverwriteVariant.NO_UNDO),
}


def transfer(db, accounts, frm, to, amount):
    """Move money between accounts in one transaction."""
    tid = db.begin()
    rows = {name: (rid, balance) for rid, (name, balance) in accounts.rows(tid)}
    rid_from, balance_from = rows[frm]
    rid_to, balance_to = rows[to]
    if balance_from < amount:
        db.abort(tid)
        raise ValueError(f"{frm} has only {balance_from}")
    accounts.update(tid, rid_from, (frm, balance_from - amount))
    accounts.update(tid, rid_to, (to, balance_to + amount))
    db.commit(tid)


def balances(accounts):
    return {name: balance for _rid, (name, balance) in accounts.rows()}


def run_app(label, make_manager):
    db = Database(make_manager())
    accounts = db.create_table("accounts")

    tid = db.begin()
    for name in ("alice", "bob", "carol"):
        accounts.insert(tid, (name, 100))
    db.commit(tid)

    transfer(db, accounts, "alice", "bob", 30)
    transfer(db, accounts, "bob", "carol", 50)

    # A transfer dies halfway: alice debited, nobody credited yet ... crash!
    half_done = db.begin()
    rows = {name: (rid, bal) for rid, (name, bal) in accounts.rows(half_done)}
    rid, balance = rows["alice"]
    accounts.update(half_done, rid, ("alice", balance - 999))
    db.crash()
    db.recover()

    ledger = balances(db.table("accounts"))
    total = sum(ledger.values())
    print(f"  {label:<28} {ledger}  (total {total})")
    assert ledger == {"alice": 70, "bob": 80, "carol": 150}
    assert total == 300  # money is conserved
    return ledger


def main() -> None:
    print("Same banking app, three recovery architectures, one crash each:")
    results = [run_app(label, factory) for label, factory in MANAGERS.items()]
    assert all(result == results[0] for result in results)
    print("All managers restored the identical, money-conserving ledger.")


if __name__ == "__main__":
    main()
