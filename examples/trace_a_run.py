"""Trace a run: watch the pipeline the paper describes, event by event.

Attaches a timeline to a small simulation and renders an ASCII activity
strip per transaction — frames allocated, pages streaming in, updates
becoming durable, commit.  Useful for understanding how the read-ahead
window, the WAL barrier, and commit processing interleave.

Run:  python examples/trace_a_run.py
"""

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.metrics import Timeline
from repro.sim import RandomStreams

WIDTH = 72  # characters of strip per run


def strip_for(timeline, tid, t_end):
    """One ASCII lane: '.' idle, 'r' page read, 'w' durable write,
    '[' begin, ']' commit."""
    lane = ["."] * WIDTH
    scale = WIDTH / t_end

    def mark(t, char):
        index = min(WIDTH - 1, int(t * scale))
        lane[index] = char

    for event in timeline.events("page_read"):
        if event["tid"] == tid:
            mark(event.time, "r")
    for event in timeline.events("write_durable"):
        if event["tid"] == tid:
            mark(event.time, "w")
    for event in timeline.events("txn_begin"):
        if event["tid"] == tid:
            mark(event.time, "[")
    for event in timeline.events("txn_commit"):
        if event["tid"] == tid:
            mark(event.time, "]")
    return "".join(lane)


def main() -> None:
    timeline = Timeline()
    config = MachineConfig(mpl=3)
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=6, max_pages=80),
        config.db_pages,
        RandomStreams(21).stream("workload"),
    )
    machine = DatabaseMachine(
        config,
        ParallelLoggingArchitecture(LoggingConfig()),
        timeline=timeline,
    )
    result = machine.run(transactions)

    t_end = result.makespan_ms
    print(f"six transactions under parallel logging ({t_end:.0f} ms total)")
    print(f"legend: [ begin   r page read   w update durable   ] commit\n")
    for txn in transactions:
        print(f"T{txn.tid} ({txn.n_reads:3d}r/{txn.n_writes:2d}w) {strip_for(timeline, txn.tid, t_end)}")
    print()
    print(timeline.summary())
    print()
    print(
        "Things to notice: at MPL 3, three strips are active at any time;\n"
        "'w' marks trail their transaction's reads (updated pages wait for\n"
        "their log page, then stream home); commits come right after the\n"
        "last durable write — the paper's completion-time definition."
    )


if __name__ == "__main__":
    main()
