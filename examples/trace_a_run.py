"""Trace a run: watch the pipeline the paper describes, span by span.

Attaches a :class:`repro.trace.Tracer` to a small simulation and renders
the subsystem's terminal views — a per-transaction phase timeline, the
mean phase breakdown (flame view), and the critical resource — then
writes a Chrome/Perfetto trace you can open in https://ui.perfetto.dev.
Useful for understanding how the read-ahead window, the WAL barrier, and
commit processing interleave.

Run:  python examples/trace_a_run.py
"""

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.sim import RandomStreams
from repro.trace import (
    Tracer,
    aggregate_breakdown,
    critical_resource,
    render_flame,
    render_timeline,
    to_chrome_trace,
    write_json,
)

TRACE_PATH = "trace_a_run.json"


def main() -> None:
    tracer = Tracer()
    config = MachineConfig(mpl=3)
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=6, max_pages=80),
        config.db_pages,
        RandomStreams(21).stream("workload"),
    )
    machine = DatabaseMachine(
        config,
        ParallelLoggingArchitecture(LoggingConfig()),
        tracer=tracer,
    )
    result = machine.run(transactions)

    print(f"six transactions under parallel logging ({result.makespan_ms:.0f} ms total)")
    print()
    print(render_timeline(tracer))
    print()
    breakdown = aggregate_breakdown(tracer)
    print(render_flame(breakdown, title="mean completion time, by phase"))
    print(f"critical resource: {critical_resource(breakdown)}")
    print()
    write_json(to_chrome_trace(tracer), TRACE_PATH)
    print(f"wrote {TRACE_PATH} — open it in chrome://tracing or ui.perfetto.dev")
    print()
    print(
        "Things to notice: at MPL 3, three lanes are active at any time;\n"
        "'w' write-backs trail their transaction's reads (updated pages\n"
        "wait out the WAL barrier, then stream home); commit comes right\n"
        "after the last durable write — the paper's completion-time\n"
        "definition, which the flame view decomposes phase by phase."
    )


if __name__ == "__main__":
    main()
