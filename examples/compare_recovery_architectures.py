"""Compare all recovery architectures, as in the paper's Table 12.

Runs the bare machine plus every recovery architecture on the same
transaction load (common random numbers) in the four paper configurations
and prints execution time per page side by side — the reproduction of the
paper's grand-comparison table, at a reduced load so it finishes in under
a minute.

Run:  python examples/compare_recovery_architectures.py
"""

from repro.experiments import ExperimentSettings, table12_comparison
from repro.experiments.paper import PAPER
from repro.experiments.tables import render
from repro.metrics import format_table


def main() -> None:
    settings = ExperimentSettings(n_transactions=15)
    result = table12_comparison(settings)
    print(render(result))
    print()

    columns = [key for key in result["rows"][0] if key != "configuration"]
    paper_rows = []
    for row in result["rows"]:
        config = row["configuration"]
        paper = PAPER["table12"][config]
        paper_rows.append([config] + [paper[k] for k in columns])
    print(
        format_table(
            ["configuration"] + columns,
            paper_rows,
            title="Paper's Table 12 (for comparison)",
        )
    )
    print()
    print(
        "Shape to look for: logging tracks the bare machine everywhere;\n"
        "scrambled shadow and differential files collapse on sequential\n"
        "loads; overwriting hurts on conventional disks but recovers on\n"
        "parallel-access disks with sequential transactions."
    )


if __name__ == "__main__":
    main()
