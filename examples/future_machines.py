"""The paper's closing prediction, simulated.

The conclusion of the paper: "if the data processing rates improve in the
future by solving the problem of I/O bandwidth available from the
mass-storage devices, then logging can still be performed in parallel by
using more than one log disk and our parallel logging algorithm."

This example builds that future: data disks get progressively faster
(shorter seeks, higher RPM, denser tracks) while the log disks stay 1985
technology.  As the machine's update rate climbs, the single log disk's
utilization climbs with it, until it saturates — and the paper's parallel
logging algorithm absorbs the growth by adding log disks.

Run:  python examples/future_machines.py
"""

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.hardware import IBM_3350, CpuParams
from repro.metrics import format_table
from repro.sim import RandomStreams

#: Progressively faster (data disk, query processor) generations; the log
#: disks stay 1985 technology throughout.
GENERATIONS = {
    "1985 (3350 + 11/750)": (IBM_3350, CpuParams(mips=0.65)),
    "late-80s (2x)": (
        IBM_3350.with_overrides(
            min_seek_ms=5.0, max_seek_ms=25.0, rotation_ms=8.35, pages_per_track=8
        ),
        CpuParams(mips=1.3),
    ),
    "early-90s (5x)": (
        IBM_3350.with_overrides(
            min_seek_ms=2.0, max_seek_ms=10.0, rotation_ms=4.0, pages_per_track=16
        ),
        CpuParams(mips=3.3),
    ),
    "mid-90s (15x)": (
        IBM_3350.with_overrides(
            min_seek_ms=0.5, max_seek_ms=3.0, rotation_ms=1.2, pages_per_track=64
        ),
        CpuParams(mips=10.0),
    ),
}


def run(generation, n_log_disks):
    disk_params, cpu_params = generation
    config = MachineConfig(
        disk=disk_params,
        cpu=cpu_params,
        parallel_data_disks=True,
        n_query_processors=75,
        cache_frames=150,
        prefetch_window=48,
    )
    workload = WorkloadConfig(n_transactions=20, sequential=True)
    transactions = generate_transactions(
        workload, config.db_pages, RandomStreams(7).stream("workload")
    )
    arch = ParallelLoggingArchitecture(
        LoggingConfig(n_log_processors=n_log_disks)
    )
    machine = DatabaseMachine(config, arch)
    result = machine.run(transactions)
    return result


def main() -> None:
    rows = []
    for label, generation in GENERATIONS.items():
        one = run(generation, 1)
        best = one
        chosen = 1
        for n in (2, 3):
            candidate = run(generation, n)
            if candidate.execution_time_per_page < 0.95 * best.execution_time_per_page:
                best, chosen = candidate, n
        rows.append(
            [
                label,
                round(one.execution_time_per_page, 2),
                round(one.utilization("log_disks"), 2),
                chosen,
                round(best.execution_time_per_page, 2),
            ]
        )
    print(
        format_table(
            [
                "data-disk generation",
                "ms/page (1 log disk)",
                "log util (1 disk)",
                "log disks worth it",
                "ms/page (best)",
            ],
            rows,
            title="Faster data disks, 1985 log disks: when parallel logging pays",
        )
    )
    print(
        "\nAs data I/O improves, the 1985-vintage log disk's utilization\n"
        "climbs; once it saturates, the parallel logging algorithm absorbs\n"
        "the growth by spreading fragments over more log disks — exactly\n"
        "the paper's closing prediction."
    )


if __name__ == "__main__":
    main()
