"""The ``repro bench`` / ``repro bench-diff`` verbs, end to end."""

import json
import textwrap

import pytest

from repro.cli import main

# One bench tree for the whole module: discovery imports grid modules by
# package name, and Python caches imports — a fresh tree per test under
# the same package name would silently reuse the first one.
TREE = "clibenchtree"


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("benchcli")
    tree = root / TREE
    tree.mkdir()
    (tree / "bench_toy.py").write_text(
        textwrap.dedent(
            '''
            """Tiny deterministic grid for CLI round-trip tests."""

            from repro.bench import Grid


            def toy_runner(params, seed):
                return {"cost": float(params["pages"]) + seed % 3}


            GRID = Grid(
                name="toy",
                seed=1985,
                runner=toy_runner,
                parameters={"pages": [10, 20]},
                primary_metric="cost",
            )
            '''
        )
    )
    return tree


def test_list_renders_grid_summaries(bench_dir, capsys):
    assert main(["bench", "--dir", str(bench_dir), "--list"]) == 0
    out = capsys.readouterr().out
    assert "toy" in out and "2 cells" in out and "gate cost" in out


def test_bench_writes_output_only_by_default(bench_dir, capsys):
    assert main(["bench", "--dir", str(bench_dir)]) == 0
    out = capsys.readouterr().out
    artifact = bench_dir / "output" / "BENCH_toy.json"
    assert artifact.exists()
    assert str(artifact) in out
    assert not (bench_dir.parent / "BENCH_toy.json").exists()
    payload = json.loads(artifact.read_text())
    assert payload["name"] == "toy"
    assert len(payload["cells"]) == 2


def test_write_baselines_lands_at_tree_root(bench_dir, capsys):
    assert main(["bench", "--dir", str(bench_dir), "--write-baselines"]) == 0
    capsys.readouterr()
    baseline = bench_dir.parent / "BENCH_toy.json"
    assert baseline.exists()
    assert baseline.read_bytes() == (
        bench_dir / "output" / "BENCH_toy.json"
    ).read_bytes()


def test_bench_diff_passes_on_fresh_baselines(bench_dir, capsys):
    assert main(["bench-diff", "--dir", str(bench_dir)]) == 0
    out = capsys.readouterr().out
    assert "0 gating findings" in out


def test_bench_diff_run_flag_reprices_then_diffs(bench_dir, capsys):
    assert main(["bench-diff", "--dir", str(bench_dir), "--run"]) == 0
    out = capsys.readouterr().out
    assert "ran toy (2 cells)" in out


def test_synthetic_regression_fails_the_gate(bench_dir, capsys):
    artifact = bench_dir / "output" / "BENCH_toy.json"
    payload = json.loads(artifact.read_text())
    payload["cells"][0]["metrics"]["cost"] *= 2
    artifact.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")

    assert main(["bench-diff", "--dir", str(bench_dir)]) == 1
    captured = capsys.readouterr()
    assert "FAIL regression" in captured.out
    assert "trajectory gate FAILED" in captured.err

    # A loose enough CLI tolerance lets the same drift through.
    assert (
        main(["bench-diff", "--dir", str(bench_dir), "--tolerance", "2.0"]) == 0
    )
    capsys.readouterr()

    # Repricing with --run restores the honest artifact and the gate.
    assert main(["bench-diff", "--dir", str(bench_dir), "--run"]) == 0
    capsys.readouterr()


def test_unknown_grid_name_exits_2(bench_dir, capsys):
    assert main(["bench", "--dir", str(bench_dir), "no_such_grid"]) == 2
    assert "no_such_grid" in capsys.readouterr().err


def test_missing_tree_exits_2(tmp_path, capsys):
    empty = tmp_path / "nothing"
    empty.mkdir()
    assert main(["bench", "--dir", str(empty)]) == 2
    assert "no bench_*.py" in capsys.readouterr().err
