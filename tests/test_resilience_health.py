"""Unit tests for the BEC health monitor (bounded failure detection)."""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.resilience import HealthConfig, HealthMonitor
from repro.sim import RandomStreams
from repro.workload import TransactionStatus


def build(n=6, **over):
    config = MachineConfig(seed=4242, parallel_data_disks=True, **over)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=60),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    return DatabaseMachine(config, None), txns


def run_monitored(machine, txns, *specs, health=HealthConfig()):
    if specs:
        injector = FaultInjector(FaultPlan.of(*specs, seed=0))
        injector.arm(machine)
    monitor = HealthMonitor(machine, health)
    result = machine.run(txns)
    return monitor, result


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(heartbeat_ms=0)
        with pytest.raises(ValueError):
            HealthConfig(suspicion_probes=0)
        with pytest.raises(ValueError):
            HealthConfig(probe_bytes=0)
        with pytest.raises(ValueError):
            HealthConfig(jitter_ms=-1.0)


class TestMonitorAttachment:
    def test_registers_on_machine(self):
        machine, _ = build()
        monitor = HealthMonitor(machine)
        assert machine.health is monitor

    def test_probes_every_component(self):
        machine, _ = build()
        monitor = HealthMonitor(machine)
        kinds = {kind for kind, _ in monitor.components()}
        assert kinds == {"qp", "disk"}  # bare machine has no log processors
        assert len(monitor.components()) == (
            machine.config.n_query_processors + len(machine.data_disks)
        )

    def test_detection_bound_grows_with_suspicion(self):
        machine, _ = build()
        fast = HealthMonitor(machine, HealthConfig(suspicion_probes=1))
        machine.health = None
        slow = HealthMonitor(machine, HealthConfig(suspicion_probes=4))
        assert slow.detection_bound_ms > fast.detection_bound_ms

    def test_monitor_does_not_perturb_the_workload(self):
        """Observability parity: probes ride a dedicated link and an
        independent rng stream, so a fault-free monitored run finishes at
        exactly the unmonitored makespan."""
        machine, txns = build()
        bare = machine.run(txns)
        machine2, txns2 = build()
        _monitor, monitored = run_monitored(machine2, txns2)
        assert monitored.makespan_ms == bare.makespan_ms


class TestDetection:
    def test_dead_qp_detected_within_bound(self):
        machine, txns = build()
        monitor, result = run_monitored(
            machine, txns, FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=0)
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        qp_hits = [d for d in monitor.detections if d["kind"] == "qp"]
        assert len(qp_hits) == 1
        assert qp_hits[0]["index"] == 0
        assert qp_hits[0]["latency_ms"] <= monitor.detection_bound_ms

    def test_degraded_mirror_detected(self):
        machine, txns = build(mirrored_data_disks=True)
        monitor, _ = run_monitored(
            machine, txns, FaultSpec(FaultKind.DISK_FAIL, at_time=50.0, target=0)
        )
        disk_hits = [d for d in monitor.detections if d["kind"] == "disk"]
        assert len(disk_hits) == 1
        assert disk_hits[0]["index"] == 0

    def test_repaired_component_rearms_detection(self):
        machine, txns = build(n=10)
        monitor, _ = run_monitored(
            machine,
            txns,
            FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=2, repair_after=300.0),
        )
        assert [d["index"] for d in monitor.detections if d["kind"] == "qp"] == [2]
        # After the repair the slot is healthy again and no longer declared.
        assert ("qp", 2) not in monitor._declared

    def test_detection_is_deterministic(self):
        times = []
        for _ in range(2):
            machine, txns = build()
            monitor, _ = run_monitored(
                machine, txns, FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=0)
            )
            times.append([d["time_ms"] for d in monitor.detections])
        assert times[0] == times[1]
