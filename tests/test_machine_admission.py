"""Tests for overload protection (repro.machine.admission + run_open)."""

import pytest

from repro.loadgen.arrivals import ArrivalConfig
from repro.loadgen.runner import run_open_load
from repro.machine import DatabaseMachine, MachineConfig
from repro.machine.admission import AdmissionQueue, BackpressureMonitor
from repro.machine.config import MachineConfig as _Config
from repro.core import PageTableShadowArchitecture
from repro.sim.core import Environment
from repro.workload.generator import WorkloadConfig, generate_transactions
from repro.sim.rng import RandomStreams


def open_run(policy="drop", rate_tps=30.0, n=16, **config_overrides):
    """One small open-system run under heavy offered load."""
    config_overrides.setdefault("admission_policy", policy)
    return run_open_load(
        "shadow",
        ArrivalConfig(rate_tps=rate_tps, n_arrivals=n),
        seed=1985,
        slo_ms=0.0,
        config_overrides=config_overrides,
    )


class TestAccounting:
    def test_every_offered_transaction_dispositioned(self):
        run = open_run(admission_queue_limit=2)
        assert run.ok, run.oracle_violations
        assert run.offered == 16
        assert run.admitted + run.rejected + run.shed == run.offered

    def test_admitted_transactions_all_commit(self):
        run = open_run(admission_queue_limit=2)
        assert run.committed == run.admitted

    def test_overload_produces_rejections(self):
        run = open_run(admission_queue_limit=1, admission_retry_max_attempts=1)
        assert run.rejected > 0

    def test_closed_run_untouched_by_admission(self):
        # The closed-batch path must not even construct the admission
        # machinery: pre-PR traces stay byte-identical.
        config = MachineConfig(seed=1985, parallel_data_disks=True)
        txns = generate_transactions(
            WorkloadConfig(n_transactions=4, max_pages=40),
            config.db_pages,
            RandomStreams(7).stream("workload"),
        )
        machine = DatabaseMachine(config, PageTableShadowArchitecture())
        result = machine.run(txns)
        assert machine.admission is None
        assert "admission_offered" not in result.counters


class TestPolicies:
    def test_block_policy_rejects_no_more_than_drop(self):
        drop = open_run(policy="drop", admission_queue_limit=1)
        block = open_run(
            policy="block",
            admission_queue_limit=1,
            admission_block_timeout_ms=2_000.0,
        )
        assert block.rejected <= drop.rejected
        assert block.ok and drop.ok

    def test_token_bucket_caps_admissions(self):
        # 2 tokens of burst and a trickle refill: a 16-txn burst mostly
        # bounces even though the queue itself has room.
        run = open_run(
            policy="token-bucket",
            admission_tokens_per_s=1.0,
            admission_token_burst=2,
            admission_retry_max_attempts=1,
            admission_queue_limit=32,
        )
        assert run.ok, run.oracle_violations
        assert run.rejected >= run.offered // 2

    def test_deadline_sheds_instead_of_retrying_forever(self):
        run = open_run(
            policy="drop",
            admission_queue_limit=1,
            admission_deadline_ms=30.0,
            admission_retry_max_attempts=10,
            admission_retry_base_ms=25.0,
        )
        assert run.ok, run.oracle_violations
        assert run.shed > 0

    def test_retries_counted(self):
        run = open_run(
            policy="drop",
            admission_queue_limit=1,
            admission_retry_max_attempts=4,
        )
        assert run.result.counter("admission_retries") > 0


class _FakeCache:
    def __init__(self, capacity=100):
        self.capacity = capacity
        self.in_use = 0


class _FakeLocks:
    def __init__(self):
        self.waiting_requests = 0


class _FakeMachine:
    """Just enough machine for a BackpressureMonitor unit test."""

    def __init__(self):
        self.config = _Config(
            backpressure_cache_high=0.9,
            backpressure_cache_low=0.5,
            backpressure_lock_high=10,
            backpressure_lock_low=2,
        )
        self.env = Environment()
        self.cache = _FakeCache()
        self.locks = _FakeLocks()
        self.hooks = []

    def _tinstant(self, name, **fields):
        self.hooks.append(name)

    def fault_hook(self, name):
        self.hooks.append(name)


class TestBackpressureMonitor:
    def test_hysteresis_asserts_high_releases_low(self):
        machine = _FakeMachine()
        monitor = BackpressureMonitor(machine)
        assert monitor.update() is False
        machine.cache.in_use = 95  # over the 0.9 high watermark
        assert monitor.update() is True
        machine.cache.in_use = 70  # below high but above the 0.5 low
        assert monitor.update() is True  # hysteresis holds it asserted
        machine.cache.in_use = 40
        assert monitor.update() is False
        assert monitor.transitions.count == 2
        assert "backpressure.on" in machine.hooks
        assert "backpressure.off" in machine.hooks

    def test_lock_waiters_alone_trigger(self):
        machine = _FakeMachine()
        monitor = BackpressureMonitor(machine)
        machine.locks.waiting_requests = 10
        assert monitor.update() is True
        machine.locks.waiting_requests = 2
        assert monitor.update() is False

    def test_release_requires_both_signals_low(self):
        machine = _FakeMachine()
        monitor = BackpressureMonitor(machine)
        machine.cache.in_use = 95
        machine.locks.waiting_requests = 20
        assert monitor.update() is True
        machine.cache.in_use = 0  # cache drained, locks still hot
        assert monitor.update() is True
        machine.locks.waiting_requests = 0
        assert monitor.update() is False


class TestSlotQueueViaAdmission:
    def test_release_hands_slot_to_waiter(self):
        machine = _FakeMachine()
        queue = AdmissionQueue(machine).queue
        assert queue.capacity == machine.config.admission_queue_limit
        for _ in range(queue.capacity):
            assert queue.try_acquire()
        assert not queue.try_acquire()
        waiter = queue.wait()
        queue.release()
        assert waiter.triggered  # slot passed through, not freed
        assert queue.in_use == queue.capacity
        queue.release()
        assert queue.in_use == queue.capacity - 1

    def test_cancelled_waiter_skipped(self):
        machine = _FakeMachine()
        queue = AdmissionQueue(machine).queue
        assert queue.try_acquire()
        abandoned = queue.wait()
        live = queue.wait()
        queue.capacity = 1  # force the waiters to matter
        queue.cancel(abandoned)
        queue.release()
        assert not abandoned.triggered
        assert live.triggered


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"admission_queue_limit": 0},
            {"admission_policy": "lottery"},
            {"admission_policy": "token-bucket"},  # needs tokens_per_s > 0
            {"backpressure_cache_high": 1.5},
            {"backpressure_cache_low": 0.99, "backpressure_cache_high": 0.5},
            {"backpressure_lock_low": 50, "backpressure_lock_high": 10},
        ],
    )
    def test_bad_overload_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)


class TestBackpressureEndToEnd:
    def test_saturated_cache_turns_arrivals_away(self):
        # A near-zero cache watermark with arrivals spread across the
        # run: mid-run arrivals find frames in use and the monitor must
        # assert at least once.
        run = open_run(
            rate_tps=2.0,
            n=20,
            backpressure_cache_high=0.05,
            backpressure_cache_low=0.01,
            admission_retry_max_attempts=2,
        )
        assert run.ok, run.oracle_violations
        assert run.result.counter("backpressure_transitions") > 0
        assert run.result.extras["backpressure_ms"] >= 0.0
