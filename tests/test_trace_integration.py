"""End-to-end tracing tests: zero perturbation, exact attribution.

These are the acceptance checks of the tracing subsystem: attaching a
tracer changes *nothing* measurable (traced and untraced runs return
equal ``RunResult``s), the phase breakdown partitions completion time
exactly, and a traced architecture pair attributes its completion-time
gap phase by phase — the quantitative explanation behind a Table 12
comparison.
"""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.experiments.runner import ExperimentSettings, run_configuration, CONFIGURATIONS
from repro.experiments.tracing import SIM_ARCHITECTURES, render_diff, run_traced, trace_diff
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sim import RandomStreams
from repro.trace import Tracer

SMALL = ExperimentSettings(n_transactions=8)


class TestZeroPerturbation:
    @pytest.mark.parametrize("arch", sorted(SIM_ARCHITECTURES))
    def test_traced_metrics_equal_untraced(self, arch):
        config = CONFIGURATIONS["parallel-random"]
        # Version pairs double disk space; match the ablation's halved db.
        overrides = {"db_pages": 60_000} if arch == "version-selection" else None
        untraced = run_configuration(
            config, SIM_ARCHITECTURES[arch], settings=SMALL, machine_overrides=overrides
        )
        traced = run_configuration(
            config,
            SIM_ARCHITECTURES[arch],
            settings=SMALL,
            machine_overrides=overrides,
            tracer=Tracer(),
        )
        assert traced == untraced

    def test_percentiles_match_run_result_exactly(self):
        run = run_traced("logging", settings=SMALL)
        assert run.percentiles == run.result.completion_percentiles

    def test_breakdown_sums_to_mean_completion(self):
        run = run_traced("logging", settings=SMALL)
        assert sum(run.breakdown.values()) == pytest.approx(
            run.result.mean_completion_ms
        )


class TestAttribution:
    def test_table12_pair_deltas_sum_to_the_gap(self):
        run_a, run_b, rows = trace_diff("logging", "shadow-pt", settings=SMALL)
        gap = run_b.result.mean_completion_ms - run_a.result.mean_completion_ms
        assert sum(delta for _, _, _, delta in rows) == pytest.approx(gap)
        text = render_diff(run_a, run_b, rows)
        assert "delta" in text and "total" in text

    def test_every_architecture_traces_its_own_phases(self):
        expected = {
            "logging": "wal.wait",
            "shadow-pt": "pt.update",
            "overwriting": "scratch.write",
            "differential": "append",
        }
        for arch, phase in sorted(expected.items()):
            run = run_traced(arch, settings=SMALL)
            assert run.tracer.named(phase), f"{arch} recorded no {phase} spans"

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            run_traced("nonesuch", settings=SMALL)
        with pytest.raises(ValueError, match="unknown configuration"):
            run_traced("logging", configuration="nonesuch", settings=SMALL)


class TestFaultInstants:
    def test_fault_point_and_crash_recorded(self):
        tracer = Tracer()
        config = MachineConfig(mpl=2)
        txns = generate_transactions(
            WorkloadConfig(n_transactions=6, max_pages=40),
            config.db_pages,
            RandomStreams(5).stream("workload"),
        )
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="machine.commit", occurrence=2),
            seed=config.seed,
        )
        injector = FaultInjector(plan)
        machine = DatabaseMachine(config, None, tracer=tracer, faults=injector)
        injector.arm(machine)
        machine.run(txns)
        hooks = {m.args.get("hook") for m in tracer.instants if m.name == "fault.point"}
        assert "machine.commit" in hooks
        crashes = [m for m in tracer.instants if m.name == "machine.crash"]
        assert len(crashes) == 1
        assert tracer.open_spans(), "crash should cut spans open"
