"""Runner invariants: byte-identity, schema round-trip, importance."""

import json

import pytest

from repro.bench import (
    SELFTEST_GRID,
    BenchSchemaError,
    BenchSpecError,
    ComponentToggle,
    Grid,
    run_grid,
    validate_payload,
    write_grid_artifacts,
)


def bad_metrics_runner(params, seed):
    return ["not", "a", "dict"]


def missing_primary_runner(params, seed):
    return {"other": 1.0}


def bad_tuple_runner(params, seed):
    return ({"cost": 1.0}, "detail", "extra")


def non_scalar_runner(params, seed):
    return {"cost": [1.0]}


def _bad_grid(runner):
    return Grid(
        name="broken",
        seed=1,
        runner=runner,
        parameters={"x": [1]},
        primary_metric="cost",
    )


class TestSerialVsJobs:
    def test_byte_identical_artifacts(self):
        serial = run_grid(SELFTEST_GRID, jobs=1)
        fanned = run_grid(SELFTEST_GRID, jobs=4)
        assert serial.canonical_json() == fanned.canonical_json()

    def test_wall_clock_stays_out_of_canonical(self):
        result = run_grid(SELFTEST_GRID)
        assert "wall" not in result.canonical_json()
        sidecar = result.wall_clock()
        assert sidecar["name"] == "selftest"
        assert sidecar["total_ms"] >= 0.0
        assert set(sidecar["cells"]) == {
            cell.cell.run_id for cell in result.cells
        }


class TestSchemaRoundTrip:
    def test_payload_validates_and_survives_json(self):
        result = run_grid(SELFTEST_GRID)
        text = result.canonical_json()
        reloaded = json.loads(text)
        validate_payload(reloaded)  # no exception
        assert reloaded["name"] == "selftest"
        assert reloaded["schema_version"] == 2
        assert len(reloaded["cells"]) == len(SELFTEST_GRID.cells())

    def test_tampered_payload_rejected(self):
        payload = json.loads(run_grid(SELFTEST_GRID).canonical_json())
        payload["cells"][0]["run_id"] = "nothex!"
        with pytest.raises(BenchSchemaError):
            validate_payload(payload)

    def test_duplicate_run_ids_rejected(self):
        payload = json.loads(run_grid(SELFTEST_GRID).canonical_json())
        payload["cells"][1]["run_id"] = payload["cells"][0]["run_id"]
        with pytest.raises(BenchSchemaError):
            validate_payload(payload)

    def test_missing_primary_metric_rejected(self):
        payload = json.loads(run_grid(SELFTEST_GRID).canonical_json())
        del payload["cells"][0]["metrics"]["cost_ms"]
        with pytest.raises(BenchSchemaError):
            validate_payload(payload)


class TestArtifacts:
    def test_write_output_and_baseline(self, tmp_path):
        result = run_grid(SELFTEST_GRID)
        out = tmp_path / "output"
        root = tmp_path / "root"
        paths = write_grid_artifacts(result, str(out), baseline_dir=str(root))
        assert [p.replace(str(tmp_path), "") for p in paths] == [
            "/output/BENCH_selftest.json",
            "/root/BENCH_selftest.json",
        ]
        a = (out / "BENCH_selftest.json").read_bytes()
        b = (root / "BENCH_selftest.json").read_bytes()
        assert a == b
        sidecar = json.loads((out / "BENCH_selftest.wallclock.json").read_text())
        assert sidecar["name"] == "selftest"
        assert not (root / "BENCH_selftest.wallclock.json").exists()

    def test_output_only_without_baseline_dir(self, tmp_path):
        result = run_grid(SELFTEST_GRID)
        paths = write_grid_artifacts(result, str(tmp_path / "output"))
        assert len(paths) == 1


class TestImportance:
    def test_selftest_ranking_is_predictable(self):
        # batching saves 40% of the page cost, cache only 20% of the
        # fixed cost — batching must outrank cache.
        importance = run_grid(SELFTEST_GRID).importance
        assert [entry["component"] for entry in importance] == [
            "batching",
            "cache",
        ]
        assert [entry["rank"] for entry in importance] == [1, 2]
        # Both components help: removing them raises cost_ms.
        assert all(entry["impact"] > 0 for entry in importance)
        assert importance[0]["impact"] > importance[1]["impact"]
        assert all(entry["n_points"] == 4 for entry in importance)

    def test_toggle_free_grid_has_empty_importance(self):
        grid = Grid(
            name="flat",
            seed=1,
            runner=selfless_runner,
            parameters={"x": [1, 2]},
            primary_metric="cost",
        )
        assert run_grid(grid).importance == []


def selfless_runner(params, seed):
    return {"cost": float(params["x"])}


class TestAccessors:
    def test_cell_and_metric_lookup(self):
        result = run_grid(SELFTEST_GRID)
        cell = result.cell(mode="fast", pages=10)
        assert cell.cell.toggles_off == ()
        assert result.metric(mode="fast", pages=10) == cell.metrics["cost_ms"]
        assert result.metric(
            "throughput", toggles_off=("cache",), mode="slow", pages=50
        ) == result.cell(("cache",), mode="slow", pages=50).metrics["throughput"]

    def test_ambiguous_and_missing_lookups_raise(self):
        result = run_grid(SELFTEST_GRID)
        with pytest.raises(KeyError, match="cells match"):
            result.cell(mode="fast")  # two pages values match
        with pytest.raises(KeyError, match="cells match"):
            result.cell(mode="warp", pages=10)
        with pytest.raises(KeyError, match="no metric"):
            result.cell(mode="fast", pages=10).metric("nope")


class TestRunnerErrors:
    def test_non_dict_metrics(self):
        with pytest.raises(BenchSpecError, match="metrics dict"):
            run_grid(_bad_grid(bad_metrics_runner))

    def test_missing_primary(self):
        with pytest.raises(BenchSpecError, match="primary metric"):
            run_grid(_bad_grid(missing_primary_runner))

    def test_bad_tuple_arity(self):
        with pytest.raises(BenchSpecError, match="tuple"):
            run_grid(_bad_grid(bad_tuple_runner))

    def test_non_scalar_metric_value(self):
        with pytest.raises(BenchSpecError, match="not a scalar"):
            run_grid(_bad_grid(non_scalar_runner))
