"""Tests for the checkpoint subsystem: policies, adapters, scheduler."""

import pytest

from repro.checkpoint import (
    CHECKPOINT_FILE,
    CheckpointError,
    CheckpointRecord,
    CheckpointScheduler,
    CheckpointUnsupported,
    FuzzyCheckpoint,
    QuiescentCheckpoint,
    adapter_for,
    recovery_volume,
    sim_checkpointer,
)
from repro.checkpoint.adapters import _ADAPTERS
from repro.faults import ARCHITECTURES, make_manager
from repro.storage.interface import RecoveryManager


class TestPolicyTemplate:
    def test_every_manager_checkpoints_when_quiescent(self):
        for arch in sorted(ARCHITECTURES):
            manager = make_manager(arch)
            tid = manager.begin()
            manager.write(tid, 0, b"x")
            manager.commit(tid)
            stats = manager.take_checkpoint()
            assert not stats.skipped, arch
            assert stats.record.seq == 1, arch
            assert stats.record.active == (), arch
            assert manager.checkpoint_count() == 1, arch
            assert manager.last_checkpoint().kind == stats.record.kind, arch

    def test_checkpoint_records_are_durable_across_crash(self):
        for arch in sorted(ARCHITECTURES):
            manager = make_manager(arch)
            tid = manager.begin()
            manager.write(tid, 0, b"x")
            manager.commit(tid)
            manager.take_checkpoint()
            manager.crash()
            manager.recover()
            assert manager.checkpoint_count() == 1, arch
            assert manager.read_committed(0) == b"x", arch

    def test_quiescent_policy_skips_under_load(self):
        manager = make_manager("versions")
        assert isinstance(adapter_for(manager), QuiescentCheckpoint)
        tid = manager.begin()
        manager.write(tid, 0, b"x")
        stats = manager.take_checkpoint()
        assert stats.skipped and stats.reason == "active-transactions"
        assert manager.checkpoint_count() == 0
        manager.commit(tid)
        assert not manager.take_checkpoint().skipped

    def test_fuzzy_policy_records_active_transactions(self):
        manager = make_manager("wal")
        assert isinstance(adapter_for(manager), FuzzyCheckpoint)
        tid = manager.begin()
        manager.write(tid, 0, b"x")
        stats = manager.take_checkpoint()
        assert not stats.skipped
        assert stats.record.active == (tid,)
        manager.commit(tid)

    def test_compaction_reclaims_recovery_data(self):
        manager = make_manager("wal")
        for _ in range(5):
            tid = manager.begin()
            manager.write(tid, 0, b"x")
            manager.commit(tid)
        volume = recovery_volume(manager)
        assert volume > 0
        stats = manager.take_checkpoint()
        assert stats.reclaimed > 0
        assert recovery_volume(manager) < volume

    def test_record_sequence_increments(self):
        manager = make_manager("shadow")
        first = manager.take_checkpoint()
        second = manager.take_checkpoint()
        assert (first.record.seq, second.record.seq) == (1, 2)
        records = manager.stable.read_file(CHECKPOINT_FILE)
        assert [CheckpointRecord(*r).seq for r in records] == [1, 2]


class TestAdapterRegistry:
    def test_every_architecture_has_an_adapter(self):
        for arch in sorted(ARCHITECTURES):
            manager = make_manager(arch)
            assert manager.name in _ADAPTERS

    def test_declared_policy_matches_adapter(self):
        for arch in sorted(ARCHITECTURES):
            manager = make_manager(arch)
            adapter = adapter_for(manager)
            assert isinstance(adapter, manager.checkpoint_policy), arch

    def test_unknown_manager_unsupported(self):
        class StrangeManager(RecoveryManager):
            name = "strange"
            checkpoint_unsupported = True

        with pytest.raises(CheckpointUnsupported):
            adapter_for(StrangeManager())

    def test_policy_mismatch_rejected(self):
        manager = make_manager("wal")
        manager.checkpoint_policy = QuiescentCheckpoint
        with pytest.raises(CheckpointError, match="declares"):
            adapter_for(manager)


class TestScheduler:
    def test_rejects_degenerate_thresholds(self):
        with pytest.raises(ValueError):
            CheckpointScheduler(every_ops=0)
        with pytest.raises(ValueError):
            CheckpointScheduler(every_records=0)

    def test_op_threshold_triggers(self):
        scheduler = CheckpointScheduler(every_ops=3)
        manager = make_manager("shadow")
        for _ in range(2):
            scheduler.note_op()
            assert scheduler.maybe_checkpoint(manager) is None
        scheduler.note_op()
        assert scheduler.due
        stats = scheduler.maybe_checkpoint(manager)
        assert stats is not None and not stats.skipped
        assert scheduler.taken == 1 and not scheduler.due

    def test_record_threshold_triggers(self):
        scheduler = CheckpointScheduler(every_records=10)
        scheduler.note_records(9)
        assert not scheduler.due
        scheduler.note_records(1)
        assert scheduler.due

    def test_skip_keeps_the_checkpoint_due(self):
        scheduler = CheckpointScheduler(every_ops=1)
        manager = make_manager("versions")
        tid = manager.begin()
        manager.write(tid, 0, b"x")
        scheduler.note_op()
        stats = scheduler.maybe_checkpoint(manager)
        assert stats is not None and stats.skipped
        assert scheduler.due and scheduler.skipped == 1
        manager.commit(tid)
        stats = scheduler.maybe_checkpoint(manager)
        assert stats is not None and not stats.skipped
        assert scheduler.taken == 1 and not scheduler.due

    def test_sim_checkpointer_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            next(sim_checkpointer(None, None, 0))
