"""Tests for the differential-merge policy analysis."""

import math

import pytest

from repro.analysis.merge_policy import (
    merge_cost_ms,
    optimal_merge_interval,
    overhead_slope_ms_per_txn,
)
from repro.core import DifferentialConfig, DifferentialFileArchitecture
from repro.experiments import CONFIGURATIONS, ExperimentSettings, run_configuration
from repro.machine import MachineConfig
from repro.metrics import RunResult


class TestMergeCost:
    def test_scales_with_base_size(self):
        config = MachineConfig()
        small = merge_cost_ms(config, base_pages=10_000)
        large = merge_cost_ms(config, base_pages=100_000)
        assert large == pytest.approx(10 * small, rel=0.05)

    def test_more_disks_merge_faster(self):
        two = merge_cost_ms(MachineConfig())
        four = merge_cost_ms(MachineConfig(n_data_disks=4, db_pages=120_000))
        assert four < 0.6 * two

    def test_full_database_merge_is_minutes_not_hours(self):
        # 120k pages x ~4.2 ms transfer / 2 disks ~ 4-5 simulated minutes.
        cost = merge_cost_ms(MachineConfig())
        assert 100_000 < cost < 1_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_cost_ms(MachineConfig(), base_pages=0)
        with pytest.raises(ValueError):
            merge_cost_ms(MachineConfig(), size_fraction=0)


class TestOptimalInterval:
    def test_square_root_law(self):
        assert optimal_merge_interval(200.0, 1.0) == pytest.approx(20.0)

    def test_costlier_merge_means_rarer_merges(self):
        assert optimal_merge_interval(800.0, 1.0) > optimal_merge_interval(200.0, 1.0)

    def test_steeper_overhead_means_more_frequent_merges(self):
        assert optimal_merge_interval(200.0, 4.0) < optimal_merge_interval(200.0, 1.0)

    def test_zero_slope_never_merges(self):
        assert optimal_merge_interval(200.0, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_merge_interval(0.0, 1.0)


class TestSlopeFromRuns:
    def make(self, fraction, makespan):
        return RunResult(
            architecture=f"differential[optimal, size={fraction:.0%}, output=10%]",
            makespan_ms=makespan,
            pages_processed=1000,
            mean_completion_ms=1.0,
            n_transactions=10,
        )

    def test_slope_from_two_measurements(self):
        slope = overhead_slope_ms_per_txn(
            self.make(0.10, 10_000.0),
            self.make(0.20, 14_000.0),
            appended_pages_per_txn=4.0,
            base_pages=120_000,
        )
        # d(per-txn)/d(fraction) = 400/0.1 = 4000; x (4/120000) = 0.1333.
        assert slope == pytest.approx(0.1333, rel=0.01)

    def test_non_differential_rejected(self):
        bad = RunResult("bare", 1.0, 1, 1.0, n_transactions=10)
        with pytest.raises(ValueError):
            overhead_slope_ms_per_txn(bad, bad, 1.0, 1000)

    def test_same_fraction_rejected(self):
        run = self.make(0.10, 10_000.0)
        with pytest.raises(ValueError):
            overhead_slope_ms_per_txn(run, run, 1.0, 1000)

    def test_end_to_end_from_simulated_runs(self):
        """Real Table 11-style runs feed the policy: the optimal interval
        is finite and far larger than one transaction."""
        settings = ExperimentSettings(n_transactions=8)
        config = CONFIGURATIONS["conventional-random"]
        small = run_configuration(
            config,
            lambda: DifferentialFileArchitecture(
                DifferentialConfig(size_fraction=0.10)
            ),
            settings,
        )
        large = run_configuration(
            config,
            lambda: DifferentialFileArchitecture(
                DifferentialConfig(size_fraction=0.20)
            ),
            settings,
        )
        machine_config = MachineConfig()
        slope = overhead_slope_ms_per_txn(
            small, large, appended_pages_per_txn=4.0, base_pages=machine_config.db_pages
        )
        merge = merge_cost_ms(machine_config)
        interval = optimal_merge_interval(merge, slope)
        assert 10 < interval < 10_000_000
