"""Garbled bytes surface as typed integrity failures, not anonymous crashes.

Satellite of docs/INTEGRITY.md: :class:`RecordCodecError` is an
:class:`~repro.integrity.IntegrityError`, the codec raises it on
truncated or garbled input, and every decode call site above it (heap
tables, the B+tree, the index RID codec) wraps it into a *located*
:class:`~repro.integrity.RecordIntegrityError`.
"""

import pytest

from repro.integrity import IntegrityError, RecordIntegrityError
from repro.storage import Database, ShadowPageTableManager
from repro.storage.btree import BTree
from repro.storage.indexed import _decode_rid
from repro.storage.records import RecordCodecError, decode_record, encode_record


class TestCodecErrors:
    def test_codec_error_is_integrity_error(self):
        assert issubclass(RecordCodecError, IntegrityError)

    def test_round_trip(self):
        row = (1, "name", 2.5, None, True, b"\x00\xff", 2**70)
        assert decode_record(encode_record(row)) == row

    def test_truncated_bytes(self):
        raw = encode_record((1, "hello", 2.5))
        for cut in (1, len(raw) // 2, len(raw) - 1):
            with pytest.raises(RecordCodecError):
                decode_record(raw[:cut])

    def test_empty_bytes(self):
        with pytest.raises(RecordCodecError):
            decode_record(b"")

    def test_unknown_tag(self):
        raw = bytearray(encode_record((1,)))
        raw[2:3] = b"Z"  # clobber the first field's type tag
        with pytest.raises(RecordCodecError):
            decode_record(bytes(raw))

    def test_trailing_garbage(self):
        with pytest.raises(RecordCodecError):
            decode_record(encode_record((1,)) + b"junk")

    def test_garbled_bigint_payload(self):
        raw = bytearray(encode_record((2**70,)))
        raw[-1:] = b"x"  # non-digit inside the decimal payload
        with pytest.raises(RecordCodecError):
            decode_record(bytes(raw))

    def test_garbled_utf8_payload(self):
        raw = bytearray(encode_record(("hi",)))
        raw[-2:] = b"\xff\xfe"  # invalid UTF-8 in the string payload
        with pytest.raises(RecordCodecError):
            decode_record(bytes(raw))

    def test_unsupported_field_type(self):
        with pytest.raises(RecordCodecError):
            encode_record(({"a": 1},))


def _garble_committed(manager, key):
    """Flip the last byte of a committed page image, in place.

    Slotted pages pack record bytes from the page end, so the flip lands
    inside the stored row's encoding without touching the slot directory.
    The write goes through the manager (envelopes track it), modeling
    corruption the checksum layer missed — a pre-envelope garble.
    """
    raw = manager.read_committed(key)
    garbled = raw[:-1] + bytes([raw[-1] ^ 0xFF])
    tid = manager.begin()
    manager.write(tid, key, garbled)
    manager.commit(tid)


class TestHeapTableDecode:
    def test_garbled_row_surfaces_located_error(self):
        manager = ShadowPageTableManager()
        db = Database(manager)
        table = db.create_table("t")
        tid = manager.begin()
        rid = table.insert(tid, (1, "row"))
        manager.commit(tid)
        # Garble the stored row's payload inside its slotted page.
        _garble_committed(manager, table.heap._page_key(rid.page_no))
        with pytest.raises(RecordIntegrityError) as excinfo:
            table.fetch_row(None, rid)
        assert "table:t" in excinfo.value.file

    def test_decode_row_wraps_codec_error(self):
        manager = ShadowPageTableManager()
        db = Database(manager)
        table = db.create_table("t")
        tid = manager.begin()
        rid = table.insert(tid, (1, "row"))
        manager.commit(tid)
        with pytest.raises(RecordIntegrityError) as excinfo:
            table._decode_row(rid, b"\xff\xff garbage")
        assert f"table:t" in excinfo.value.file
        assert excinfo.value.index == rid.slot


class TestBTreeDecode:
    def test_garbled_meta_surfaces_located_error(self):
        manager = ShadowPageTableManager()
        tree = BTree(manager, file_id=7)
        tid = manager.begin()
        tree.insert(tid, b"k", b"v")
        manager.commit(tid)
        # Clobber the tree's meta page through the manager it uses.
        tid = manager.begin()
        manager.write(tid, tree._meta_key(), b"\x01\x02not a record")
        manager.commit(tid)
        with pytest.raises(RecordIntegrityError) as excinfo:
            tree.search(None, b"k")
        assert "btree:7" in excinfo.value.file


class TestIndexRidDecode:
    def test_garbled_rid_bytes_wrap(self):
        with pytest.raises(RecordIntegrityError) as excinfo:
            _decode_rid(b"\x00garbage")
        assert excinfo.value.file == "index:rid"
