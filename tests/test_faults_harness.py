"""The crash-recovery harness: determinism, zero violations, and teeth."""

import pytest

from repro.faults import (
    ARCHITECTURES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    generate_ops,
    make_manager,
    run_crashtest,
    run_scenario,
)
from repro.storage.interface import RecoveryManager

ARCH_NAMES = sorted(ARCHITECTURES)


class TestWorkloadGeneration:
    def test_same_seed_same_script(self):
        assert generate_ops(7) == generate_ops(7)

    def test_different_seed_different_script(self):
        assert generate_ops(7) != generate_ops(8)

    def test_every_begin_is_resolved(self):
        ops = generate_ops(3, n_transactions=8)
        begins = sum(1 for op in ops if op[0] == "begin")
        ends = sum(1 for op in ops if op[0] in ("commit", "abort"))
        assert begins == 8
        assert ends == 8

    def test_lock_discipline_respected(self):
        ops = generate_ops(5, n_transactions=12)
        locked = {}
        for op in ops:
            if op[0] == "begin":
                locked[op[1]] = set()
            elif op[0] == "write":
                _, slot, page, _ = op
                for other, pages in locked.items():
                    if other != slot:
                        assert page not in pages
                locked[slot].add(page)
            elif op[0] in ("commit", "abort"):
                del locked[op[1]]

    def test_script_replays_cleanly_on_every_manager(self):
        ops = generate_ops(11, n_transactions=6)
        for arch in ARCH_NAMES:
            manager = make_manager(arch)
            tids, committed, pending = {}, {}, {}
            from repro.faults.harness import _apply_op

            for op in ops:
                _apply_op(manager, op, tids, committed, pending)
            for page, data in committed.items():
                assert manager.read_committed(page) == data


class TestScenario:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_clean_run_has_no_violations(self, arch):
        result = run_scenario(arch, seed=5, plan=FaultPlan.of(seed=5))
        assert result.ok
        assert result.crashed_at is None
        assert result.outcome == "no-crash"

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_crash_mid_run_recovers(self, arch):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="*", occurrence=15), seed=5
        )
        result = run_scenario(arch, seed=5, plan=plan)
        assert result.ok, result.violations
        assert result.crashed_at is not None
        assert result.outcome in ("rolled-back", "committed")


class TestCrashSweep:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_sampled_sweep_is_clean_and_deterministic(self, arch):
        first = run_crashtest(arch, seed=13, n_transactions=6, budget=8)
        second = run_crashtest(arch, seed=13, n_transactions=6, budget=8)
        assert first.ok, first.violations
        assert first.to_json() == second.to_json()

    def test_budget_limits_points(self):
        report = run_crashtest("shadow", seed=3, n_transactions=5, budget=4)
        assert len(report.points_tested) == 4
        assert report.total_crossings > 4

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            make_manager("nonesuch")


class _InPlaceManager(RecoveryManager):
    """A deliberately broken manager: overwrites in place, no undo log.

    A crash with an active transaction leaves its writes on stable
    storage — the harness must flag that as an atomicity violation.
    """

    name = "in-place"

    def _do_read(self, tid, page):
        return self.stable.read_page(page)

    def _do_write(self, tid, page, data):
        self.stable.write_page(page, data)

    def _do_commit(self, tid):
        pass

    def _do_abort(self, tid):
        pass

    def _on_crash(self):
        pass

    def _on_recover(self):
        pass

    def read_committed(self, page):
        return self.stable.read_page(page)


class TestHarnessTeeth:
    def test_broken_manager_is_caught(self):
        ARCHITECTURES["in-place"] = _InPlaceManager
        try:
            report = run_crashtest("in-place", seed=13, n_transactions=6, budget=10)
        finally:
            del ARCHITECTURES["in-place"]
        assert not report.ok
        kinds = {v["kind"] for v in report.violations}
        assert "atomicity" in kinds
        # Every violation ships a replayable (seed, plan) pair.
        for violation in report.violations:
            replay = FaultPlan.from_json(violation["plan"])
            assert replay.seed == 13
