"""Tests for indexed tables (heap + B+tree secondary indexes)."""

import pytest

from repro.storage import (
    DistributedWalManager,
    ShadowPageTableManager,
)
from repro.storage.indexed import IndexedDatabase, _index_key

MANAGERS = {
    "wal": lambda: DistributedWalManager(n_logs=2),
    "shadow": ShadowPageTableManager,
}


@pytest.fixture(params=sorted(MANAGERS), ids=sorted(MANAGERS))
def db(request):
    return IndexedDatabase(MANAGERS[request.param]())


def seed_people(db):
    people = db.create_table("people", indexes={"by_name": 0, "by_age": 1})
    tid = db.begin()
    rids = {}
    for name, age in (("carol", 45), ("alice", 30), ("bob", 17), ("dave", 30)):
        rids[name] = people.insert(tid, (name, age))
    db.commit(tid)
    return people, rids


class TestIndexKeyEncoding:
    def test_strings_order_lexicographically(self):
        assert _index_key("apple") < _index_key("banana")

    def test_ints_order_numerically(self):
        assert _index_key(9) < _index_key(10) < _index_key(100)

    def test_unindexable_types_rejected(self):
        with pytest.raises(TypeError):
            _index_key(None)
        with pytest.raises(TypeError):
            _index_key(True)
        with pytest.raises(TypeError):
            _index_key(-1)


class TestIndexedTable:
    def test_lookup_by_index(self, db):
        people, rids = seed_people(db)
        hits = people.lookup(None, "by_name", "alice")
        assert len(hits) == 1
        assert hits[0][1] == ("alice", 30)

    def test_lookup_duplicate_values(self, db):
        people, _ = seed_people(db)
        hits = people.lookup(None, "by_age", 30)
        assert sorted(row[0] for _rid, row in hits) == ["alice", "dave"]

    def test_lookup_miss(self, db):
        people, _ = seed_people(db)
        assert people.lookup(None, "by_name", "nobody") == []

    def test_range_scan_in_order(self, db):
        people, _ = seed_people(db)
        ages = [row[1] for _rid, row in people.scan_range(None, "by_age", 18, 46)]
        assert ages == [30, 30, 45]

    def test_delete_maintains_index(self, db):
        people, rids = seed_people(db)
        tid = db.begin()
        assert people.delete(tid, rids["alice"])
        db.commit(tid)
        assert people.lookup(None, "by_name", "alice") == []
        assert len(people.lookup(None, "by_age", 30)) == 1  # dave remains

    def test_update_maintains_index(self, db):
        people, rids = seed_people(db)
        tid = db.begin()
        people.update(tid, rids["bob"], ("bob", 18))
        db.commit(tid)
        assert people.lookup(None, "by_age", 17) == []
        assert len(people.lookup(None, "by_age", 18)) == 1

    def test_index_names(self, db):
        people, _ = seed_people(db)
        assert people.index_names() == ("by_age", "by_name")

    def test_uncommitted_index_entries_invisible(self, db):
        people, _ = seed_people(db)
        tid = db.begin()
        people.insert(tid, ("eve", 99))
        assert people.lookup(tid, "by_name", "eve")  # read-your-writes
        assert people.lookup(None, "by_name", "eve") == []
        db.abort(tid)
        assert people.lookup(None, "by_name", "eve") == []


class TestCrashConsistency:
    def test_index_and_heap_stay_consistent_across_crash(self, db):
        people, rids = seed_people(db)
        tid = db.begin()
        people.insert(tid, ("ghost", 1))
        people.delete(tid, rids["carol"])
        db.crash()
        db.recover()
        table = db.table("people")
        assert table.lookup(None, "by_name", "ghost") == []
        assert len(table.lookup(None, "by_name", "carol")) == 1
        # Every heap row is reachable through the index and vice versa.
        heap_names = sorted(row[0] for _rid, row in table.rows())
        index_names = sorted(
            row[0]
            for _rid, row in table.scan_range(None, "by_name", None, None)
        )
        assert heap_names == index_names

    def test_reopened_database_rebuilds_index_handles(self, db):
        people, _ = seed_people(db)
        db.crash()
        db.recover()
        table = db.table("people")
        assert table.index_names() == ("by_age", "by_name")
        assert len(table.lookup(None, "by_age", 30)) == 2
