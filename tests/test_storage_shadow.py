"""Unit tests for the functional shadow page-table manager."""

import pytest

from repro.storage import ShadowPageTableManager


@pytest.fixture
def shadow():
    return ShadowPageTableManager()


class TestShadowBasics:
    def test_read_your_writes(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"x")
        assert shadow.read(tid, 1) == b"x"

    def test_unwritten_page_empty(self, shadow):
        tid = shadow.begin()
        assert shadow.read(tid, 42) == b""

    def test_commit_swaps_root(self, shadow):
        root_before = shadow._root()
        tid = shadow.begin()
        shadow.write(tid, 1, b"x")
        shadow.commit(tid)
        assert shadow._root() == 1 - root_before
        assert shadow.read_committed(1) == b"x"

    def test_uncommitted_invisible_to_committed_view(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"pending")
        assert shadow.read_committed(1) == b""

    def test_abort_leaves_garbage_slots_only(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"junk")
        shadow.abort(tid)
        assert shadow.read_committed(1) == b""
        assert shadow.garbage_slots() >= 1

    def test_two_sequential_commits(self, shadow):
        for value in (b"v1", b"v2"):
            tid = shadow.begin()
            shadow.write(tid, 1, value)
            shadow.commit(tid)
        assert shadow.read_committed(1) == b"v2"

    def test_commit_preserves_other_pages(self, shadow):
        t1 = shadow.begin()
        shadow.write(t1, 1, b"one")
        shadow.commit(t1)
        t2 = shadow.begin()
        shadow.write(t2, 2, b"two")
        shadow.commit(t2)
        assert shadow.read_committed(1) == b"one"
        assert shadow.read_committed(2) == b"two"


class TestShadowCrash:
    def test_crash_before_commit_discards(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"ghost")
        shadow.crash()
        shadow.recover()
        assert shadow.read_committed(1) == b""

    def test_crash_after_commit_durable(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"safe")
        shadow.commit(tid)
        shadow.crash()
        shadow.recover()
        assert shadow.read_committed(1) == b"safe"

    def test_slot_data_written_before_commit_is_harmless(self, shadow):
        """New copies reach stable storage during the transaction, but no
        page table names them until the root flips."""
        tid = shadow.begin()
        shadow.write(tid, 1, b"early")
        # Data is physically on stable storage...
        assert any(data == b"early" for data in shadow.stable.pages.values())
        shadow.crash()
        shadow.recover()
        # ...but unreachable.
        assert shadow.read_committed(1) == b""

    def test_recovery_reuses_orphan_slots(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"orphan")
        shadow.crash()
        shadow.recover()
        t2 = shadow.begin()
        shadow.write(t2, 1, b"fresh")
        shadow.commit(t2)
        assert shadow.read_committed(1) == b"fresh"

    def test_interleaved_crash(self, shadow):
        t1 = shadow.begin()
        t2 = shadow.begin()
        shadow.write(t1, 1, b"one")
        shadow.write(t2, 2, b"two")
        shadow.commit(t1)
        shadow.crash()
        shadow.recover()
        assert shadow.read_committed(1) == b"one"
        assert shadow.read_committed(2) == b""

    def test_existing_stable_storage_adopted(self, shadow):
        tid = shadow.begin()
        shadow.write(tid, 1, b"persisted")
        shadow.commit(tid)
        # A brand-new manager over the same stable storage sees the data —
        # the root and tables are entirely on stable storage.
        reopened = ShadowPageTableManager(stable=shadow.stable)
        assert reopened.read_committed(1) == b"persisted"
