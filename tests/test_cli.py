"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import ABLATIONS, TABLES, main
from repro.faults import ARCHITECTURES, FaultKind, FaultPlan, FaultSpec


class TestCli:
    def test_tables_lists_all_experiments(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for number in TABLES:
            assert f"table {number:>2}:" in out
        for name in ABLATIONS:
            assert f"ablation {name}:" in out

    def test_table_runs_and_prints(self, capsys):
        assert main(["table", "2", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "log_disk_utilization" in out

    def test_table_seed_changes_output(self, capsys):
        main(["table", "2", "-n", "4", "--seed", "1"])
        first = capsys.readouterr().out
        main(["table", "2", "-n", "4", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "13"])

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "overwriting-variants", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "no_undo" in out

    def test_predict_reports_bottleneck(self, capsys):
        assert main(["predict"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck    : data-disks" in out
        assert "ms/page" in out

    def test_predict_parallel_sequential_cpu_bound(self, capsys):
        assert main(["predict", "--parallel", "--sequential"]) == 0
        out = capsys.readouterr().out
        assert "query-processors" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCommand:
    def test_trace_prints_flame_and_writes_valid_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", "--arch", "logging", "-n", "4",
                     "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical resource" in out
        assert "p99" in out
        events = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in events)
        assert str(path) in out

    def test_trace_timeline_flag(self, capsys):
        assert main(["trace", "--arch", "logging", "-n", "3", "--timeline"]) == 0
        assert "phase legend" in capsys.readouterr().out

    def test_trace_all_architectures(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", "--arch", "all", "-n", "2", "-o", str(path)]) == 0
        out = capsys.readouterr().out
        for arch in ("bare", "logging", "shadow-pt", "version-selection",
                     "overwriting", "differential"):
            assert arch in out
            assert (tmp_path / f"trace.{arch}.json").exists()

    def test_trace_rejects_unknown_arch(self):
        with pytest.raises(SystemExit):
            main(["trace", "--arch", "nonesuch"])

    def test_trace_diff_attributes_gap(self, capsys):
        assert main(["trace-diff", "logging", "shadow-pt", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean completion" in out
        assert "delta" in out
        assert "total" in out


class TestCrashtestCommand:
    def test_single_arch_sweep_passes(self, capsys):
        assert main(["crashtest", "--arch", "wal", "--seed", "7",
                     "--budget", "6", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "wal" in out
        assert "ok" in out

    def test_all_archs_and_json_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main(["crashtest", "--seed", "11", "--budget", "3", "-n", "3",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert sorted(data) == sorted(ARCHITECTURES)
        for report in data.values():
            assert report["violations"] == []

    def test_plan_replay_roundtrip(self, capsys, tmp_path):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="*", occurrence=9), seed=7
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert main(["crashtest", "--arch", "shadow", "--seed", "7", "-n", "4",
                     "--plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "crashed_at" in out

    def test_plan_replay_requires_single_arch(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.of(seed=1).to_json())
        assert main(["crashtest", "--plan", str(path)]) == 2
