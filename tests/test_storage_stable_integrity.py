"""StableStorage's checksum envelopes, scrub probes, and targeted repair.

The storage-side half of docs/INTEGRITY.md: every stored value carries
an envelope, every verified read raises a typed error on mismatch, log
reads apply the torn-tail stop rule, and the ``restore_page`` /
``replace_record`` repair mutators accept only provably-original bits.
"""

import pytest

from repro.integrity import PageIntegrityError, RecordIntegrityError
from repro.storage.stable import StableStorage


def make_store():
    stable = StableStorage()
    stable.write_page(1, b"one", seq=5)
    stable.write_page(2, b"two", seq=9)
    stable.append("log", (1, "begin"))
    stable.append("log", (1, "write", 7))
    stable.append("log", (1, "commit"))
    return stable


class TestVerifiedReads:
    def test_clean_reads_pass(self):
        stable = make_store()
        assert stable.read_page(1) == b"one"
        assert stable.read_file("log")[0] == (1, "begin")
        assert stable.checksum_failures == 0

    def test_corrupt_page_detected_on_read(self):
        stable = make_store()
        stable.corrupt_page(1)
        with pytest.raises(PageIntegrityError):
            stable.read_page(1)
        assert stable.checksum_failures == 1
        assert stable.corruptions_injected == 1

    def test_corrupt_record_detected_on_read_file(self):
        stable = make_store()
        stable.corrupt_record("log", 1)
        with pytest.raises(RecordIntegrityError) as excinfo:
            stable.read_file("log")
        assert excinfo.value.index == 1

    def test_absent_page_reads_empty(self):
        stable = StableStorage()
        assert stable.read_page(99) == b""

    def test_rewrite_heals_the_envelope(self):
        stable = make_store()
        stable.corrupt_page(1)
        stable.write_page(1, b"fresh")
        assert stable.read_page(1) == b"fresh"


class TestReadLog:
    def test_clean_log_fully_replayed(self):
        stable = make_store()
        assert len(stable.read_log("log")) == 3
        assert stable.torn_tail_drops == 0

    def test_corrupt_tail_dropped_as_torn(self):
        stable = make_store()
        stable.corrupt_record("log", 2)
        records = stable.read_log("log")
        assert len(records) == 2
        assert stable.torn_tail_drops == 1
        assert stable.checksum_failures == 0  # a tear is not a failure

    def test_interior_corruption_raises(self):
        stable = make_store()
        stable.corrupt_record("log", 0)
        with pytest.raises(RecordIntegrityError) as excinfo:
            stable.read_log("log")
        assert excinfo.value.index == 0
        assert stable.checksum_failures == 1

    def test_missing_log_is_empty(self):
        assert StableStorage().read_log("nope") == []


class TestScrubProbes:
    def test_clean_store_scrubs_clean(self):
        stable = make_store()
        assert stable.scrub() == {"pages": [], "files": {}}

    def test_scrub_locates_all_corruption(self):
        stable = make_store()
        stable.corrupt_page(2)
        stable.corrupt_record("log", 1)
        report = stable.scrub()
        assert report == {"pages": [2], "files": {"log": [1]}}
        # Probes never raise and never bump the failure counter.
        assert stable.checksum_failures == 0

    def test_verify_page_and_file(self):
        stable = make_store()
        assert stable.verify_page(1)
        assert stable.verify_page(404)  # absent pages are vacuously fine
        stable.corrupt_page(1)
        assert not stable.verify_page(1)
        assert stable.verify_file("log") == []
        stable.corrupt_record("log", 2)
        assert stable.verify_file("log") == [2]


class TestTargetedRepair:
    def test_page_matches_only_original_bits(self):
        stable = make_store()
        assert stable.page_matches(1, b"one")
        assert not stable.page_matches(1, b"stale")
        assert not stable.page_matches(404, b"one")

    def test_restore_page_heals_rot(self):
        stable = make_store()
        stable.corrupt_page(1)
        stable.restore_page(1, b"one")
        assert stable.read_page(1) == b"one"
        assert stable.page_seq(1) == 5  # seq survives the repair

    def test_restore_page_rejects_stale_candidate(self):
        stable = make_store()
        stable.corrupt_page(1)
        with pytest.raises(PageIntegrityError):
            stable.restore_page(1, b"stale bits")

    def test_restore_absent_page_raises(self):
        with pytest.raises(KeyError):
            StableStorage().restore_page(1, b"x")

    def test_replace_record_heals_rot(self):
        stable = make_store()
        stable.corrupt_record("log", 1)
        stable.replace_record("log", 1, (1, "write", 7))
        assert stable.read_file("log")[1] == (1, "write", 7)

    def test_replace_record_rejects_wrong_candidate(self):
        stable = make_store()
        stable.corrupt_record("log", 1)
        with pytest.raises(RecordIntegrityError):
            stable.replace_record("log", 1, (9, "bogus"))
        with pytest.raises(KeyError):
            stable.replace_record("log", 99, (1, "write", 7))


class TestCorruptionInjection:
    def test_corrupt_absent_targets_raise(self):
        stable = StableStorage()
        with pytest.raises(KeyError):
            stable.corrupt_page(1)
        with pytest.raises(KeyError):
            stable.corrupt_record("log", 0)

    def test_truncate_resets_envelopes(self):
        stable = make_store()
        stable.corrupt_record("log", 0)
        stable.truncate("log", [(2, "fresh")])
        assert stable.read_file("log") == [(2, "fresh")]
        assert stable.scrub() == {"pages": [], "files": {}}
