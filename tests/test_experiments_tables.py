"""Structural tests for the per-table experiment functions.

Each function must run end-to-end on a tiny load and return rows matching
the paper's table layout.  (The *values* are checked by the shape tests;
here we check plumbing.)
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    PAPER,
    ablation_interconnect,
    ablation_overwriting_variants,
    ablation_version_selection,
    table1_logging_impact,
    table2_log_utilization,
    table6_pt_buffer,
    table7_sequential_shadow,
    table8_random_overwriting,
    table10_output_fraction,
    table11_differential_size,
)
from repro.experiments.tables import render

TINY = ExperimentSettings(n_transactions=4)


class TestTableStructures:
    def test_table1_rows_and_columns(self):
        result = table1_logging_impact(TINY)
        assert len(result["rows"]) == 4
        row = result["rows"][0]
        assert {"exec_without_log", "exec_with_log", "completion_with_log"} <= set(row)
        assert result["paper"] is PAPER["table1"]

    def test_table2_has_paper_reference_per_row(self):
        result = table2_log_utilization(TINY)
        for row in result["rows"]:
            assert 0.0 <= row["log_disk_utilization"] <= 1.0
            assert row["paper"] == PAPER["table2"][row["configuration"]]

    def test_table6_buffer_columns(self):
        result = table6_pt_buffer(TINY, buffer_sizes=(10,))
        assert {"bare", "buffer_10"} <= set(result["rows"][0])
        assert len(result["rows"]) == 2  # the two random configurations

    def test_table7_columns(self):
        result = table7_sequential_shadow(TINY)
        assert {"bare", "clustered", "scrambled", "overwriting"} <= set(
            result["rows"][0]
        )

    def test_table8_columns(self):
        result = table8_random_overwriting(TINY)
        assert {"bare", "thru_pt", "overwriting"} <= set(result["rows"][0])

    def test_table10_fraction_columns(self):
        result = table10_output_fraction(TINY, fractions=(0.10,))
        assert "output_10pct" in result["rows"][0]

    def test_table11_size_columns(self):
        result = table11_differential_size(TINY, sizes=(0.10,))
        assert "size_10pct" in result["rows"][0]

    def test_render_produces_aligned_text(self):
        result = table2_log_utilization(TINY)
        text = render(result)
        assert result["title"] in text
        assert "configuration" in text


class TestAblations:
    def test_interconnect_ablation_structure(self):
        result = ablation_interconnect(TINY, bandwidths=(1.0,))
        row = result["rows"][0]
        assert "link_1.0MBs" in row and "through_cache" in row

    def test_interconnect_insensitivity(self):
        """Section 4.1.3: bandwidth barely matters, cache routing is free."""
        settings = ExperimentSettings(n_transactions=10)
        result = ablation_interconnect(settings, bandwidths=(1.0, 0.01))
        row = next(
            r for r in result["rows"] if r["configuration"] == "conventional-random"
        )
        assert row["link_0.01MBs"] <= 1.10 * row["link_1.0MBs"]
        assert row["through_cache"] <= 1.10 * row["link_1.0MBs"]

    def test_version_selection_ablation_structure(self):
        result = ablation_version_selection(TINY)
        assert {"bare", "thru_pt", "version_selection"} <= set(result["rows"][0])

    def test_overwriting_variants_ablation(self):
        result = ablation_overwriting_variants(TINY)
        row = result["rows"][0]
        assert row["no_undo"] > 0 and row["no_redo"] > 0


class TestPaperNumbers:
    def test_paper_tables_complete(self):
        assert set(PAPER) == {f"table{i}" for i in range(1, 13)}

    def test_table12_has_eight_architectures(self):
        for config, row in PAPER["table12"].items():
            assert len(row) == 8, config

    def test_table3_grid_complete(self):
        assert len(PAPER["table3"]["exec"]) == 20  # 5 disk counts x 4 policies
