"""Gate: the repository's own tree must be reprolint-clean.

This is the test CI leans on — a rule violation anywhere in ``src``,
``tests``, or ``benchmarks`` fails the suite with the same report the CLI
prints, so the determinism and recovery-discipline invariants cannot rot.
"""

from pathlib import Path

from repro.lint import LintEngine, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_repository_is_lint_clean():
    paths = [
        str(REPO_ROOT / name)
        for name in ("src", "tests", "benchmarks")
        if (REPO_ROOT / name).is_dir()
    ]
    assert paths, f"no lintable directories under {REPO_ROOT}"
    engine = LintEngine(root=str(REPO_ROOT))
    project = engine.load(paths)
    findings = engine.run_project(project)
    assert not findings, "\n" + render_text(findings, checked_files=len(project.modules))
