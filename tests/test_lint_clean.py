"""Gate: the repository's own tree must be reprolint-clean.

This is the test CI leans on — a rule violation anywhere in ``src``,
``tests``, or ``benchmarks`` fails the suite, and the failure message is
the finding list itself (rule, location, message, one per line — the same
report the CLI prints), so the offending lines are readable straight from
the pytest output without re-running the linter.
"""

from pathlib import Path

import pytest

from repro.lint import LintEngine, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_repository_is_lint_clean():
    paths = [
        str(REPO_ROOT / name)
        for name in ("src", "tests", "benchmarks")
        if (REPO_ROOT / name).is_dir()
    ]
    assert paths, f"no lintable directories under {REPO_ROOT}"
    engine = LintEngine(root=str(REPO_ROOT))
    project = engine.load(paths)
    findings = engine.run_project(project)
    if findings:
        lines = [f"the tree is not lint-clean ({len(findings)} finding(s)):"]
        for finding in findings:
            lines.append(f"  {finding.rule} {finding.location()}: {finding.message}")
        lines.append("")
        lines.append(render_text(findings, checked_files=len(project.modules)))
        pytest.fail("\n".join(lines), pytrace=False)
