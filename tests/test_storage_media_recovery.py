"""Tests for WAL media recovery (archive dump + archive log)."""

import pytest

from repro.storage import DistributedWalManager


@pytest.fixture
def wal():
    return DistributedWalManager(n_logs=3)


def committed_write(wal, page, data):
    tid = wal.begin()
    wal.write(tid, page, data)
    wal.commit(tid)


class TestDump:
    def test_dump_reports_sizes(self, wal):
        committed_write(wal, 1, b"one")
        committed_write(wal, 2, b"two")
        stats = wal.dump()
        assert stats["pages"] >= 2

    def test_dump_flushes_first(self, wal):
        committed_write(wal, 1, b"one")
        assert wal.stable.page_seq(1) == 0  # no-force: still dirty
        wal.dump()
        assert wal.stable.page_seq(1) == 1  # dump flushed it


class TestMediaRecovery:
    def test_restore_from_dump_alone(self, wal):
        committed_write(wal, 1, b"one")
        committed_write(wal, 2, b"two")
        wal.dump()
        wal.recover_from_media_failure()
        assert wal.read_committed(1) == b"one"
        assert wal.read_committed(2) == b"two"

    def test_commits_after_dump_replayed_from_archive_log(self, wal):
        committed_write(wal, 1, b"old")
        wal.dump()
        committed_write(wal, 1, b"new")
        committed_write(wal, 3, b"fresh")
        wal.archive_append()
        wal.recover_from_media_failure()
        assert wal.read_committed(1) == b"new"
        assert wal.read_committed(3) == b"fresh"

    def test_unarchived_tail_is_lost(self, wal):
        """Classic media-recovery semantics: work committed after the last
        archive point does not survive losing the data disks."""
        committed_write(wal, 1, b"archived")
        wal.dump()
        committed_write(wal, 1, b"lost")
        # no archive_append before the failure
        wal.recover_from_media_failure()
        assert wal.read_committed(1) == b"archived"

    def test_uncommitted_in_dump_rolled_back(self, wal):
        committed_write(wal, 1, b"good")
        tid = wal.begin()
        wal.write(tid, 1, b"dirty")
        wal.dump()  # dump flushes the stolen page AND archives its records
        wal.recover_from_media_failure()
        assert wal.read_committed(1) == b"good"

    def test_normal_operation_continues_after_restore(self, wal):
        committed_write(wal, 1, b"one")
        wal.dump()
        wal.recover_from_media_failure()
        committed_write(wal, 1, b"after")
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"after"

    def test_restore_then_crash_restart(self, wal):
        committed_write(wal, 1, b"base")
        wal.dump()
        committed_write(wal, 2, b"more")
        wal.archive_append()
        wal.recover_from_media_failure()
        tid = wal.begin()
        wal.write(tid, 2, b"uncommitted")
        wal.crash()
        wal.recover()
        assert wal.read_committed(2) == b"more"
