"""Unit tests for the mirrored data disk."""

import pytest

from repro.hardware import IBM_3350, DiskAddress
from repro.hardware.mirror import MirroredDisk
from repro.sim import Environment, RandomStreams, SimulationError

#: Three cylinders keep rebuild runs fast while exercising the loop.
SMALL = IBM_3350.with_overrides(cylinders=3)


def make_mirror(**over):
    env = Environment()
    mirror = MirroredDisk(env, SMALL, RandomStreams(5), name="d0", **over)
    return env, mirror


def run_request(env, mirror, kind, addresses):
    request = mirror.submit(kind, addresses)
    env.run(until=request.done)
    return request


ADDR = [DiskAddress(0, 0, 0)]


class TestHealthyMirror:
    def test_starts_fully_redundant(self):
        _env, mirror = make_mirror()
        assert not mirror.failed
        assert not mirror.degraded
        assert not mirror.rebuilding

    def test_read_served_by_primary(self):
        env, mirror = make_mirror()
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None
        assert mirror.fallback_reads.count == 0

    def test_write_lands_on_both_sides(self):
        env, mirror = make_mirror()
        request = run_request(env, mirror, "write", ADDR)
        assert request.error is None
        assert all(side.accesses.count == 1 for side in mirror.sides)

    def test_share_validated(self):
        with pytest.raises(SimulationError):
            make_mirror(rebuild_io_share=0.0)
        with pytest.raises(SimulationError):
            make_mirror(rebuild_io_share=1.5)

    def test_deterministic_given_streams(self):
        times = []
        for _ in range(2):
            env, mirror = make_mirror()
            run_request(env, mirror, "write", ADDR)
            run_request(env, mirror, "read", ADDR)
            times.append(env.now)
        assert times[0] == times[1]


class TestDegradedMirror:
    def test_one_side_down_keeps_serving(self):
        env, mirror = make_mirror()
        mirror.fail()
        assert mirror.degraded and not mirror.failed
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None
        assert mirror.fallback_reads.count == 1  # served off the twin

    def test_writes_survive_one_side(self):
        env, mirror = make_mirror()
        mirror.fail()
        request = run_request(env, mirror, "write", ADDR)
        assert request.error is None

    def test_both_sides_down_fails_requests(self):
        env, mirror = make_mirror()
        mirror.fail()
        mirror.fail()
        assert mirror.failed
        request = run_request(env, mirror, "read", ADDR)
        assert request.error == "mirror-failed"
        assert mirror.failed_requests.count == 1


class TestRebuild:
    def test_replacement_needs_a_dead_side(self):
        _env, mirror = make_mirror()
        with pytest.raises(SimulationError):
            mirror.attach_replacement()

    def test_replacement_is_stale_until_rebuilt(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        assert mirror.rebuilding
        # Reads keep coming off the surviving clean side meanwhile.
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None

    def test_rebuild_restores_redundancy(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        env.run()
        assert not mirror.degraded
        assert not mirror.rebuilding
        assert mirror.rebuilds_completed.count == 1
        assert mirror.rebuilt_pages.count == SMALL.capacity_pages

    def test_rebuild_share_bounds_duration(self):
        durations = {}
        for share in (1.0, 0.5):
            env, mirror = make_mirror(rebuild_io_share=share)
            mirror.fail(side=0)
            mirror.attach_replacement()
            env.run()
            durations[share] = env.now
        # Half the I/O share means (roughly) twice the wall time.
        assert durations[0.5] > 1.5 * durations[1.0]

    def test_degraded_window_closed_by_rebuild(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        env.run()
        assert mirror.degraded_since is None
        assert mirror.degraded_ms > 0.0

    def test_extra_counters_shape(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        env.run()
        counters = mirror.extra_counters()
        assert counters["mirror_rebuilds"] == 1
        assert counters["mirror_lost_requests"] == 0
        assert sorted(counters) == [
            "mirror_fallback_reads",
            "mirror_lost_requests",
            "mirror_rebuilds",
            "mirror_rebuilt_pages",
        ]
