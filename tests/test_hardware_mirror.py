"""Unit tests for the mirrored data disk."""

import pytest

from repro.hardware import IBM_3350, DiskAddress
from repro.hardware.mirror import MirroredDisk
from repro.sim import Environment, RandomStreams, SimulationError

#: Three cylinders keep rebuild runs fast while exercising the loop.
SMALL = IBM_3350.with_overrides(cylinders=3)


def make_mirror(**over):
    env = Environment()
    mirror = MirroredDisk(env, SMALL, RandomStreams(5), name="d0", **over)
    return env, mirror


def run_request(env, mirror, kind, addresses):
    request = mirror.submit(kind, addresses)
    env.run(until=request.done)
    return request


ADDR = [DiskAddress(0, 0, 0)]


class TestHealthyMirror:
    def test_starts_fully_redundant(self):
        _env, mirror = make_mirror()
        assert not mirror.failed
        assert not mirror.degraded
        assert not mirror.rebuilding

    def test_read_served_by_primary(self):
        env, mirror = make_mirror()
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None
        assert mirror.fallback_reads.count == 0

    def test_write_lands_on_both_sides(self):
        env, mirror = make_mirror()
        request = run_request(env, mirror, "write", ADDR)
        assert request.error is None
        assert all(side.accesses.count == 1 for side in mirror.sides)

    def test_share_validated(self):
        with pytest.raises(SimulationError):
            make_mirror(rebuild_io_share=0.0)
        with pytest.raises(SimulationError):
            make_mirror(rebuild_io_share=1.5)

    def test_deterministic_given_streams(self):
        times = []
        for _ in range(2):
            env, mirror = make_mirror()
            run_request(env, mirror, "write", ADDR)
            run_request(env, mirror, "read", ADDR)
            times.append(env.now)
        assert times[0] == times[1]


class TestDegradedMirror:
    def test_one_side_down_keeps_serving(self):
        env, mirror = make_mirror()
        mirror.fail()
        assert mirror.degraded and not mirror.failed
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None
        assert mirror.fallback_reads.count == 1  # served off the twin

    def test_writes_survive_one_side(self):
        env, mirror = make_mirror()
        mirror.fail()
        request = run_request(env, mirror, "write", ADDR)
        assert request.error is None

    def test_both_sides_down_fails_requests(self):
        env, mirror = make_mirror()
        mirror.fail()
        mirror.fail()
        assert mirror.failed
        request = run_request(env, mirror, "read", ADDR)
        assert request.error == "mirror-failed"
        assert mirror.failed_requests.count == 1


class TestRebuild:
    def test_replacement_needs_a_dead_side(self):
        _env, mirror = make_mirror()
        with pytest.raises(SimulationError):
            mirror.attach_replacement()

    def test_replacement_is_stale_until_rebuilt(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        assert mirror.rebuilding
        # Reads keep coming off the surviving clean side meanwhile.
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None

    def test_rebuild_restores_redundancy(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        env.run()
        assert not mirror.degraded
        assert not mirror.rebuilding
        assert mirror.rebuilds_completed.count == 1
        assert mirror.rebuilt_pages.count == SMALL.capacity_pages

    def test_rebuild_share_bounds_duration(self):
        durations = {}
        for share in (1.0, 0.5):
            env, mirror = make_mirror(rebuild_io_share=share)
            mirror.fail(side=0)
            mirror.attach_replacement()
            env.run()
            durations[share] = env.now
        # Half the I/O share means (roughly) twice the wall time.
        assert durations[0.5] > 1.5 * durations[1.0]

    def test_degraded_window_closed_by_rebuild(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        env.run()
        assert mirror.degraded_since is None
        assert mirror.degraded_ms > 0.0

    def test_extra_counters_shape(self):
        env, mirror = make_mirror()
        mirror.fail(side=0)
        mirror.attach_replacement()
        env.run()
        counters = mirror.extra_counters()
        assert counters["mirror_rebuilds"] == 1
        assert counters["mirror_lost_requests"] == 0
        assert sorted(counters) == [
            "mirror_corrupt_masked",
            "mirror_fallback_reads",
            "mirror_lost_requests",
            "mirror_rebuilds",
            "mirror_rebuilt_pages",
        ]


class _AlwaysTear:
    """Duck-typed injector: every write tears, nothing rots."""

    def torn_write(self, target=None):
        return True

    def bit_rot(self, target=None):
        return False


class TestTornWrites:
    def test_one_torn_side_masked_by_twin(self):
        env, mirror = make_mirror()
        mirror.faults = _AlwaysTear()
        # Heal one side: only the other draws the tearing injector.
        mirror.sides[0].faults = None
        request = run_request(env, mirror, "write", ADDR)
        assert request.error is None
        assert not request.torn  # one intact copy makes the write durable
        assert mirror.torn_writes.count == 0

    def test_every_surviving_copy_tore(self):
        env, mirror = make_mirror()
        mirror.faults = _AlwaysTear()
        request = run_request(env, mirror, "write", ADDR)
        # Both physical writes landed but tore: the logical write is torn
        # too, and the mirror says so instead of claiming durability.
        assert request.error is None
        assert request.torn
        assert not request.ok
        assert mirror.torn_writes.count == 1
        assert all(side.torn_writes.count == 1 for side in mirror.sides)

    def test_degraded_mirror_torn_survivor_is_torn(self):
        env, mirror = make_mirror()
        mirror.faults = _AlwaysTear()
        mirror.fail(side=0)
        request = run_request(env, mirror, "write", ADDR)
        assert request.error is None
        assert request.torn
        assert mirror.torn_writes.count == 1


class TestCorruptReads:
    def _rot(self, mirror, side):
        linear = ADDR[0].linear(mirror.params)
        mirror.sides[side].corrupt_sectors[linear] = 0.0

    def test_one_rotted_side_masked_by_twin(self):
        env, mirror = make_mirror()
        self._rot(mirror, 0)
        request = run_request(env, mirror, "read", ADDR)
        assert request.error is None
        assert not request.corrupt
        assert mirror.corrupt_masked.count == 1
        assert mirror.fallback_reads.count == 1  # served off the twin

    def test_all_sides_rotted_surfaces_corruption(self):
        env, mirror = make_mirror()
        self._rot(mirror, 0)
        self._rot(mirror, 1)
        request = run_request(env, mirror, "read", ADDR)
        # No clean copy anywhere: the logical read reports corruption
        # rather than silently returning rotted bits.
        assert request.error is None
        assert request.corrupt
        assert not request.ok
        assert mirror.corrupt_masked.count == 2
