"""Tests for heap files and the table/database facade, across all
recovery managers — the layer is manager-agnostic by construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    Database,
    DistributedWalManager,
    HeapFile,
    OverwriteVariant,
    OverwritingManager,
    PageFullError,
    RecordId,
    ShadowPageTableManager,
    VersionSelectionManager,
)

MANAGERS = {
    "wal": lambda: DistributedWalManager(n_logs=2),
    "shadow": ShadowPageTableManager,
    "no-undo": lambda: OverwritingManager(OverwriteVariant.NO_UNDO),
    "no-redo": lambda: OverwritingManager(OverwriteVariant.NO_REDO),
    "versions": VersionSelectionManager,
}


@pytest.fixture(params=sorted(MANAGERS), ids=sorted(MANAGERS))
def manager(request):
    return MANAGERS[request.param]()


class TestHeapFile:
    def test_insert_fetch(self, manager):
        heap = HeapFile(manager, file_id=1)
        tid = manager.begin()
        rid = heap.insert(tid, b"hello")
        assert heap.fetch(tid, rid) == b"hello"
        manager.commit(tid)
        assert heap.fetch(None, rid) == b"hello"

    def test_grows_pages_when_full(self, manager):
        heap = HeapFile(manager, file_id=1, page_size=128)
        tid = manager.begin()
        rids = [heap.insert(tid, b"x" * 50) for _ in range(6)]
        manager.commit(tid)
        assert heap.n_pages() >= 3
        assert len({rid.page_no for rid in rids}) >= 3

    def test_oversized_record_rejected(self, manager):
        heap = HeapFile(manager, file_id=1, page_size=128)
        tid = manager.begin()
        with pytest.raises(PageFullError):
            heap.insert(tid, b"x" * 500)

    def test_delete(self, manager):
        heap = HeapFile(manager, file_id=1)
        tid = manager.begin()
        rid = heap.insert(tid, b"doomed")
        assert heap.delete(tid, rid)
        assert heap.fetch(tid, rid) is None
        assert not heap.delete(tid, rid)
        manager.commit(tid)

    def test_update_in_place(self, manager):
        heap = HeapFile(manager, file_id=1)
        tid = manager.begin()
        rid = heap.insert(tid, b"old")
        new_rid = heap.update(tid, rid, b"new")
        assert new_rid == rid
        assert heap.fetch(tid, rid) == b"new"
        manager.commit(tid)

    def test_update_relocates_when_grown(self, manager):
        heap = HeapFile(manager, file_id=1, page_size=128)
        tid = manager.begin()
        rid = heap.insert(tid, b"a" * 30)
        heap.insert(tid, b"b" * 50)
        new_rid = heap.update(tid, rid, b"c" * 80)  # no longer fits page 0
        assert new_rid != rid
        assert heap.fetch(tid, new_rid) == b"c" * 80
        assert heap.fetch(tid, rid) is None
        manager.commit(tid)

    def test_update_missing_raises(self, manager):
        heap = HeapFile(manager, file_id=1)
        tid = manager.begin()
        with pytest.raises(KeyError):
            heap.update(tid, RecordId(0, 0), b"x")

    def test_scan_order_and_len(self, manager):
        heap = HeapFile(manager, file_id=1, page_size=256)
        tid = manager.begin()
        payloads = [b"r%02d" % i for i in range(20)]
        for payload in payloads:
            heap.insert(tid, payload)
        manager.commit(tid)
        scanned = [record for _rid, record in heap.scan(None)]
        assert sorted(scanned) == sorted(payloads)
        assert len(heap) == 20

    def test_files_are_isolated(self, manager):
        a = HeapFile(manager, file_id=1)
        b = HeapFile(manager, file_id=2)
        tid = manager.begin()
        rid = a.insert(tid, b"only-in-a")
        manager.commit(tid)
        assert b.fetch(None, rid) is None
        assert len(b) == 0


class TestHeapCrashSafety:
    def test_committed_inserts_survive_crash(self, manager):
        heap = HeapFile(manager, file_id=1)
        tid = manager.begin()
        rid = heap.insert(tid, b"durable")
        manager.commit(tid)
        manager.crash()
        manager.recover()
        assert heap.fetch(None, rid) == b"durable"

    def test_uncommitted_inserts_vanish(self, manager):
        heap = HeapFile(manager, file_id=1)
        t1 = manager.begin()
        first = heap.insert(t1, b"keep")
        manager.commit(t1)
        t2 = manager.begin()
        heap.insert(t2, b"ghost")
        manager.crash()
        manager.recover()
        assert [record for _rid, record in heap.scan(None)] == [b"keep"]
        assert heap.fetch(None, first) == b"keep"

    def test_page_grow_rolls_back(self, manager):
        """An aborted transaction that allocated a new page must not leave
        the catalog pointing at it."""
        heap = HeapFile(manager, file_id=1, page_size=128)
        tid = manager.begin()
        for _ in range(5):
            heap.insert(tid, b"x" * 60)
        manager.abort(tid)
        assert heap.n_pages() == 0
        assert len(heap) == 0


class TestDatabase:
    def test_create_and_reopen_table(self, manager):
        db = Database(manager)
        accounts = db.create_table("accounts")
        tid = db.begin()
        rid = accounts.insert(tid, ("alice", 100))
        db.commit(tid)
        db.crash()
        db.recover()
        table = db.table("accounts")
        assert table.fetch_row(None, rid) == ("alice", 100)

    def test_duplicate_table_rejected(self, manager):
        db = Database(manager)
        db.create_table("t")
        with pytest.raises(ValueError):
            db.create_table("t")

    def test_missing_table_rejected(self, manager):
        with pytest.raises(KeyError):
            Database(manager).table("nope")

    def test_tables_listed(self, manager):
        db = Database(manager)
        db.create_table("a")
        db.create_table("b")
        assert db.tables() == ("a", "b")

    def test_select_scans_with_predicate(self, manager):
        db = Database(manager)
        people = db.create_table("people")
        tid = db.begin()
        for name, age in (("ann", 30), ("bob", 17), ("cy", 45)):
            people.insert(tid, (name, age))
        db.commit(tid)
        adults = [row for _rid, row in people.select(lambda r: r[1] >= 18)]
        assert sorted(adults) == [("ann", 30), ("cy", 45)]

    def test_bank_transfer_is_atomic_under_crash(self, manager):
        db = Database(manager)
        accounts = db.create_table("accounts")
        tid = db.begin()
        alice = accounts.insert(tid, ("alice", 100))
        bob = accounts.insert(tid, ("bob", 100))
        db.commit(tid)
        transfer = db.begin()
        accounts.update(transfer, alice, ("alice", 40))
        # crash before bob is credited
        db.crash()
        db.recover()
        table = db.table("accounts")
        balances = {name: amount for _rid, (name, amount) in table.rows()}
        assert balances == {"alice": 100, "bob": 100}


class RowModel:
    """Reference model for the heap property test."""


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "crash_commit", "crash_drop"]),
            st.binary(min_size=0, max_size=40),
        ),
        max_size=25,
    )
)
def test_heap_matches_model_under_crashes(ops):
    """Model-based: committed heap contents equal a dict model through
    inserts, deletes, commits, and crash-after-uncommitted sequences."""
    manager = DistributedWalManager(n_logs=2)
    heap = HeapFile(manager, file_id=1, page_size=512)
    model = {}
    for action, payload in ops:
        if action == "insert":
            tid = manager.begin()
            rid = heap.insert(tid, payload)
            manager.commit(tid)
            model[rid] = payload
        elif action == "delete" and model:
            victim = sorted(model)[0]
            tid = manager.begin()
            heap.delete(tid, victim)
            manager.commit(tid)
            del model[victim]
        elif action == "crash_commit":
            tid = manager.begin()
            rid = heap.insert(tid, payload)
            manager.commit(tid)
            model[rid] = payload
            manager.crash()
            manager.recover()
        elif action == "crash_drop":
            tid = manager.begin()
            heap.insert(tid, payload)
            manager.crash()  # uncommitted: must vanish
            manager.recover()
    assert dict(heap.scan(None)) == model
