"""The analytic models must agree with both first principles and the
simulator (cross-validation of the reproduction's calibration)."""

import pytest

from repro.analysis import (
    cpu_bound_ms_per_page,
    disk_bound_ms_per_page,
    expected_random_access_ms,
    expected_seek_ms,
    log_disk_utilization,
    predict_bare_ms_per_page,
    predict_bottleneck,
    pt_disk_demand_ms_per_page,
    sequential_access_ms,
)
from repro.experiments import CONFIGURATIONS, ExperimentSettings, run_configuration
from repro.hardware import IBM_3350
from repro.machine import MachineConfig


class TestFirstPrinciples:
    def test_expected_seek_over_full_disk(self):
        # Mean distance 555/3 = 185 cylinders -> seek ~23 ms on a 3350.
        seek = expected_seek_ms(IBM_3350, IBM_3350.cylinders)
        assert 20.0 < seek < 26.0

    def test_expected_seek_zero_for_single_cylinder(self):
        assert expected_seek_ms(IBM_3350, 1) == 0.0

    def test_random_access_around_36ms(self):
        access = expected_random_access_ms(IBM_3350, IBM_3350.cylinders)
        assert 33.0 < access < 40.0

    def test_sequential_streaming_amortizes_latency(self):
        one = sequential_access_ms(IBM_3350, 1)
        many = sequential_access_ms(IBM_3350, 20)
        assert many < one / 2
        assert many > IBM_3350.transfer_ms

    def test_sequential_run_validation(self):
        with pytest.raises(ValueError):
            sequential_access_ms(IBM_3350, 0)

    def test_disk_bound_baseline_near_18ms(self):
        assert 16.0 < disk_bound_ms_per_page(MachineConfig()) < 20.0

    def test_cpu_bound_scales_with_processors(self):
        few = cpu_bound_ms_per_page(MachineConfig(n_query_processors=25))
        many = cpu_bound_ms_per_page(MachineConfig(n_query_processors=75))
        assert few == pytest.approx(3 * many)

    def test_bottleneck_identification(self):
        base = predict_bottleneck(MachineConfig())
        assert base.bottleneck == "data-disks"
        fast_disks = predict_bottleneck(
            MachineConfig(parallel_data_disks=True), sequential=True
        )
        assert fast_disks.bottleneck == "query-processors"


class TestAgainstSimulator:
    """First-order predictions should bracket / approximate the simulator."""

    SETTINGS = ExperimentSettings(n_transactions=10)

    @pytest.mark.parametrize(
        "name",
        ["conventional-random", "parallel-random", "parallel-sequential"],
    )
    def test_bare_prediction_within_35_percent(self, name):
        configuration = CONFIGURATIONS[name]
        simulated = run_configuration(configuration, None, self.SETTINGS)
        config = MachineConfig(parallel_data_disks=configuration.parallel_disks)
        predicted = predict_bare_ms_per_page(
            config, sequential=configuration.sequential
        )
        assert predicted == pytest.approx(
            simulated.execution_time_per_page, rel=0.35
        )

    def test_prediction_lower_bounds_sequential_simulation(self):
        """The first-order model ignores inter-transaction interference, so
        conventional-sequential must simulate slower than predicted."""
        configuration = CONFIGURATIONS["conventional-sequential"]
        simulated = run_configuration(configuration, None, self.SETTINGS)
        predicted = predict_bare_ms_per_page(MachineConfig(), sequential=True)
        assert predicted < simulated.execution_time_per_page

    def test_log_utilization_prediction_matches_table2(self):
        # Paper Table 2 / our Table 2 bench: ~0.02 for conventional-random.
        predicted = log_disk_utilization(MachineConfig(), exec_ms_per_page=18.0)
        assert 0.005 < predicted < 0.06

    def test_log_utilization_physical_logging_much_higher(self):
        logical = log_disk_utilization(MachineConfig(), 2.0)
        physical = log_disk_utilization(MachineConfig(), 2.0, physical=True)
        assert physical > 5 * logical

    def test_pt_demand_exceeds_data_rate_with_one_processor(self):
        """The Table 4 bottleneck argument: PT demand per page > 18 ms."""
        demand = pt_disk_demand_ms_per_page(MachineConfig())
        assert demand > disk_bound_ms_per_page(MachineConfig())
