"""Unit tests for the statistics collectors."""

import pytest

from repro.sim import CounterStat, SampleStat, TimeWeightedStat, UtilizationTracker


class TestCounterStat:
    def test_increment(self):
        counter = CounterStat("c")
        counter.increment()
        counter.increment(4)
        assert counter.count == 5


class TestSampleStat:
    def test_mean_and_extremes(self):
        stat = SampleStat()
        for value in (2.0, 4.0, 6.0):
            stat.add(value)
        assert stat.mean == pytest.approx(4.0)
        assert stat.min == 2.0
        assert stat.max == 6.0
        assert stat.n == 3
        assert stat.total == pytest.approx(12.0)

    def test_variance_matches_textbook(self):
        stat = SampleStat()
        for value in (1.0, 2.0, 3.0, 4.0):
            stat.add(value)
        assert stat.variance == pytest.approx(5.0 / 3.0)
        assert stat.stdev == pytest.approx((5.0 / 3.0) ** 0.5)

    def test_empty_stat_is_zero(self):
        stat = SampleStat()
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.min == 0.0

    def test_percentile_requires_keep(self):
        stat = SampleStat()
        stat.add(1.0)
        with pytest.raises(ValueError):
            stat.percentile(50)

    def test_percentiles(self):
        stat = SampleStat(keep=True)
        for value in range(1, 101):
            stat.add(float(value))
        assert stat.percentile(50) == pytest.approx(50.5)
        assert stat.percentile(0) == 1.0
        assert stat.percentile(100) == 100.0


class TestTimeWeightedStat:
    def test_constant_level(self):
        stat = TimeWeightedStat(0, 3)
        assert stat.mean(10) == pytest.approx(3.0)

    def test_step_change(self):
        stat = TimeWeightedStat(0, 0)
        stat.update(5, 10)
        assert stat.mean(10) == pytest.approx(5.0)

    def test_add_delta(self):
        stat = TimeWeightedStat(0, 1)
        stat.add(2, +3)  # level 4 from t=2
        stat.add(4, -4)  # level 0 from t=4
        # area: 1*2 + 4*2 + 0*2 = 10 over 6
        assert stat.mean(6) == pytest.approx(10 / 6)

    def test_max_tracked(self):
        stat = TimeWeightedStat(0, 0)
        stat.update(1, 7)
        stat.update(2, 3)
        assert stat.max == 7

    def test_time_cannot_go_backwards(self):
        stat = TimeWeightedStat(0, 0)
        stat.update(5, 1)
        with pytest.raises(ValueError):
            stat.update(4, 2)

    def test_mean_before_last_update_rejected(self):
        stat = TimeWeightedStat(0, 0)
        stat.update(5, 1)
        with pytest.raises(ValueError):
            stat.mean(3)


class TestUtilizationTracker:
    def test_single_busy_interval(self):
        tracker = UtilizationTracker(0)
        tracker.start(2)
        tracker.stop(7)
        assert tracker.utilization(10) == pytest.approx(0.5)

    def test_nested_busy_counts_capacity(self):
        tracker = UtilizationTracker(0)
        tracker.start(0)
        tracker.start(0)
        tracker.stop(5)
        tracker.stop(10)
        # busy-time = 2*5 + 1*5 = 15 over capacity 2 * 10
        assert tracker.utilization(10, capacity=2) == pytest.approx(0.75)

    def test_stop_when_idle_raises(self):
        with pytest.raises(ValueError):
            UtilizationTracker(0).stop(1)

    def test_busy_time_extends_to_query_time(self):
        tracker = UtilizationTracker(0)
        tracker.start(0)
        assert tracker.busy_time(4) == pytest.approx(4.0)

    def test_zero_span(self):
        tracker = UtilizationTracker(5)
        assert tracker.utilization(5) == 0.0
