"""Unit tests for the functional version-selection manager."""

import pytest

from repro.storage import VersionSelectionManager


@pytest.fixture
def versions():
    return VersionSelectionManager()


class TestVersionSelection:
    def test_read_your_writes(self, versions):
        tid = versions.begin()
        versions.write(tid, 1, b"x")
        assert versions.read(tid, 1) == b"x"

    def test_commit_makes_version_selectable(self, versions):
        tid = versions.begin()
        versions.write(tid, 1, b"x")
        assert versions.read_committed(1) == b""
        versions.commit(tid)
        assert versions.read_committed(1) == b"x"

    def test_both_blocks_physically_present(self, versions):
        t1 = versions.begin()
        versions.write(t1, 1, b"v1")
        versions.commit(t1)
        t2 = versions.begin()
        versions.write(t2, 1, b"v2")
        versions.commit(t2)
        # Two blocks exist; selection picks the newer committed one.
        payloads = {
            versions._read_block(1, 0)[1],
            versions._read_block(1, 1)[1],
        }
        assert payloads == {b"v1", b"v2"}
        assert versions.read_committed(1) == b"v2"

    def test_alternating_block_usage(self, versions):
        blocks = []
        for value in (b"a", b"b", b"c"):
            tid = versions.begin()
            versions.write(tid, 1, value)
            versions.commit(tid)
            block, data = versions._select_current(1)
            blocks.append(block)
            assert data == value
        assert blocks[0] != blocks[1] and blocks[1] != blocks[2]

    def test_abort_leaves_loser_unselected(self, versions):
        t1 = versions.begin()
        versions.write(t1, 1, b"good")
        versions.commit(t1)
        t2 = versions.begin()
        versions.write(t2, 1, b"bad")
        versions.abort(t2)
        assert versions.read_committed(1) == b"good"

    def test_crash_recovery_needs_no_work(self, versions):
        t1 = versions.begin()
        versions.write(t1, 1, b"keep")
        versions.commit(t1)
        t2 = versions.begin()
        versions.write(t2, 1, b"lose")
        # The loser's block IS on stable storage...
        versions.crash()
        versions.recover()
        # ...but version selection never picks it.
        assert versions.read_committed(1) == b"keep"

    def test_multiple_writes_same_transaction_overwrite_same_block(self, versions):
        tid = versions.begin()
        versions.write(tid, 1, b"first")
        versions.write(tid, 1, b"second")
        versions.commit(tid)
        assert versions.read_committed(1) == b"second"

    def test_read_only_commit_emits_no_commit_record(self, versions):
        tid = versions.begin()
        versions.read(tid, 1)
        versions.commit(tid)
        assert versions.stable.file_length("commit_order") == 0

    def test_pages_do_not_interfere(self, versions):
        tid = versions.begin()
        versions.write(tid, 1, b"one")
        versions.write(tid, 2, b"two")
        versions.commit(tid)
        assert versions.read_committed(1) == b"one"
        assert versions.read_committed(2) == b"two"

    def test_durability_across_manager_reopen(self, versions):
        tid = versions.begin()
        versions.write(tid, 7, b"persists")
        versions.commit(tid)
        reopened = VersionSelectionManager(stable=versions.stable)
        assert reopened.read_committed(7) == b"persists"
