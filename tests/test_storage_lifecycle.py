"""The crash()/recover() lifecycle contract, across all five managers."""

import pytest

from repro.faults import ARCHITECTURES, make_manager
from repro.storage.errors import RecoveryStateError

ARCH_NAMES = sorted(ARCHITECTURES)


@pytest.mark.parametrize("arch", ARCH_NAMES)
class TestLifecycle:
    def test_recover_without_crash_raises(self, arch):
        manager = make_manager(arch)
        with pytest.raises(RecoveryStateError):
            manager.recover()

    def test_recover_without_crash_raises_even_after_commits(self, arch):
        manager = make_manager(arch)
        tid = manager.begin()
        manager.write(tid, 0, b"alpha")
        manager.commit(tid)
        with pytest.raises(RecoveryStateError):
            manager.recover()

    def test_crash_is_idempotent(self, arch):
        manager = make_manager(arch)
        tid = manager.begin()
        manager.write(tid, 0, b"alpha")
        manager.commit(tid)
        manager.crash()
        manager.crash()
        manager.crash()
        manager.recover()
        assert manager.read_committed(0) == b"alpha"

    def test_double_recover_after_one_crash_is_legal(self, arch):
        manager = make_manager(arch)
        tid = manager.begin()
        manager.write(tid, 1, b"beta")
        manager.commit(tid)
        manager.crash()
        manager.recover()
        manager.recover()
        assert manager.read_committed(1) == b"beta"

    def test_crash_during_recovery_can_restart(self, arch):
        manager = make_manager(arch)
        tid = manager.begin()
        manager.write(tid, 2, b"gamma")
        manager.commit(tid)
        victim = manager.begin()
        manager.write(victim, 3, b"doomed")
        manager.crash()
        # Model a crash mid-recovery: crash again without finishing, then
        # run recovery to completion.
        manager.crash()
        manager.recover()
        assert manager.read_committed(2) == b"gamma"
        assert manager.read_committed(3) == b""

    def test_error_message_names_the_manager(self, arch):
        manager = make_manager(arch)
        with pytest.raises(RecoveryStateError, match=manager.name):
            manager.recover()
