"""Tests for the run-timeline instrumentation."""

import io

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.metrics import Timeline, TimelineEvent
from repro.sim import RandomStreams


class TestTimelineContainer:
    def test_records_in_order(self):
        timeline = Timeline()
        timeline.record(1.0, "a", x=1)
        timeline.record(2.0, "b")
        assert len(timeline) == 2
        assert timeline.events()[0].category == "a"
        assert timeline.events()[0]["x"] == 1

    def test_rejects_time_travel(self):
        timeline = Timeline()
        timeline.record(5.0, "a")
        with pytest.raises(ValueError):
            timeline.record(4.0, "b")

    def test_category_filter(self):
        timeline = Timeline()
        timeline.record(1.0, "read")
        timeline.record(2.0, "write")
        timeline.record(3.0, "read")
        assert len(timeline.events("read")) == 2

    def test_between(self):
        timeline = Timeline()
        for t in (1.0, 2.0, 3.0, 4.0):
            timeline.record(t, "tick")
        assert [e.time for e in timeline.between(2.0, 4.0)] == [2.0, 3.0]

    def test_counts_and_span(self):
        timeline = Timeline()
        timeline.record(10.0, "a")
        timeline.record(30.0, "a")
        timeline.record(30.0, "b")
        assert timeline.counts() == {"a": 2, "b": 1}
        assert timeline.span() == 20.0

    def test_rate_per_second(self):
        timeline = Timeline()
        timeline.record(0.0, "tick")
        timeline.record(1000.0, "tick")  # 2 events over 1 simulated second
        assert timeline.rate_per_second("tick") == pytest.approx(2.0)

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.span() == 0.0
        assert timeline.rate_per_second("x") == 0.0

    def test_csv_round_trip_fields(self):
        timeline = Timeline()
        timeline.record(1.5, "read", page=7, tid=2)
        text = timeline.to_csv()
        assert "1.500,read" in text
        assert "page=7" in text and "tid=2" in text

    def test_csv_to_file_object(self):
        timeline = Timeline()
        timeline.record(1.0, "x")
        buffer = io.StringIO()
        assert timeline.to_csv(buffer) is None
        assert "time_ms" in buffer.getvalue()

    def test_csv_to_path(self, tmp_path):
        timeline = Timeline()
        timeline.record(2.0, "y", tid=1)
        path = tmp_path / "run.csv"
        assert timeline.to_csv(str(path)) is None
        assert "2.000,y,tid=1" in path.read_text()

    def test_events_returns_a_copy(self):
        timeline = Timeline()
        timeline.record(1.0, "a")
        timeline.events().clear()
        assert len(timeline) == 1

    def test_equal_timestamps_accepted(self):
        timeline = Timeline()
        timeline.record(1.0, "a")
        timeline.record(1.0, "b")
        assert [e.category for e in timeline.events()] == ["a", "b"]

    def test_event_equality_ignores_fields(self):
        assert TimelineEvent(1.0, "a", {"x": 1}) == TimelineEvent(1.0, "a", {"x": 2})

    def test_between_is_half_open(self):
        timeline = Timeline()
        for t in (1.0, 2.0, 3.0):
            timeline.record(t, "tick")
        assert [e.time for e in timeline.between(1.0, 3.0)] == [1.0, 2.0]


class TestMachineIntegration:
    def run_with_timeline(self):
        timeline = Timeline()
        config = MachineConfig()
        txns = generate_transactions(
            WorkloadConfig(n_transactions=4, max_pages=40),
            config.db_pages,
            RandomStreams(3).stream("workload"),
        )
        DatabaseMachine(config, None, timeline=timeline).run(txns)
        return timeline, txns

    def test_lifecycle_events_recorded(self):
        timeline, txns = self.run_with_timeline()
        counts = timeline.counts()
        assert counts["txn_begin"] == len(txns)
        assert counts["txn_commit"] == len(txns)
        assert counts["page_read"] == sum(t.n_reads for t in txns)

    def test_durable_writes_match_write_sets(self):
        timeline, txns = self.run_with_timeline()
        durable = sum(e["pages"] for e in timeline.events("write_durable"))
        assert durable == sum(t.n_writes for t in txns)

    def test_commit_follows_begin_per_transaction(self):
        timeline, _ = self.run_with_timeline()
        begins = {e["tid"]: e.time for e in timeline.events("txn_begin")}
        for commit in timeline.events("txn_commit"):
            assert commit.time >= begins[commit["tid"]]

    def test_no_timeline_by_default(self):
        config = MachineConfig()
        txns = generate_transactions(
            WorkloadConfig(n_transactions=2, max_pages=30),
            config.db_pages,
            RandomStreams(3).stream("workload"),
        )
        machine = DatabaseMachine(config, None)
        machine.run(txns)
        assert machine.timeline is None

    def test_summary_renders(self):
        timeline, _ = self.run_with_timeline()
        text = timeline.summary()
        assert "events over" in text
        assert "txn_commit" in text
