"""Unit tests (plus hypothesis properties) for page placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    ClusteredPlacement,
    IBM_3350,
    RingAllocator,
    ScrambledPlacement,
)


class TestClusteredPlacement:
    def test_striping_alternates_disks(self):
        placement = ClusteredPlacement(IBM_3350, 2, 1000)
        assert placement.locate(0)[0] == 0
        assert placement.locate(1)[0] == 1
        assert placement.locate(2)[0] == 0

    def test_consecutive_pages_adjacent_on_disk(self):
        placement = ClusteredPlacement(IBM_3350, 2, 1000)
        _, a0 = placement.locate(0)
        _, a2 = placement.locate(2)
        assert a2.linear(IBM_3350) == a0.linear(IBM_3350) + 1

    def test_out_of_range(self):
        placement = ClusteredPlacement(IBM_3350, 2, 100)
        with pytest.raises(ValueError):
            placement.locate(100)
        with pytest.raises(ValueError):
            placement.locate(-1)

    def test_capacity_check(self):
        with pytest.raises(ValueError):
            ClusteredPlacement(IBM_3350, 1, IBM_3350.capacity_pages + 1)

    def test_needs_a_disk(self):
        with pytest.raises(ValueError):
            ClusteredPlacement(IBM_3350, 0, 10)


class TestScrambledPlacement:
    def test_is_a_bijection(self):
        placement = ScrambledPlacement(IBM_3350, 1, 5000)
        seen = set()
        for page in range(5000):
            _, addr = placement.locate(page)
            seen.add(addr.linear(IBM_3350))
        assert len(seen) == 5000

    def test_scatters_adjacent_pages(self):
        placement = ScrambledPlacement(IBM_3350, 2, 100_000)
        _, a0 = placement.locate(0)
        _, a2 = placement.locate(2)  # same disk, logically adjacent
        assert abs(a2.cylinder - a0.cylinder) > 1

    def test_stays_within_database_region(self):
        db_pages = 10_000
        placement = ScrambledPlacement(IBM_3350, 2, db_pages)
        limit = placement.pages_per_disk
        for page in range(0, db_pages, 97):
            _, addr = placement.locate(page)
            assert addr.linear(IBM_3350) < limit

    @settings(max_examples=50)
    @given(
        db_pages=st.integers(min_value=2, max_value=20_000),
        n_disks=st.integers(min_value=1, max_value=4),
    )
    def test_bijective_for_arbitrary_sizes(self, db_pages, n_disks):
        placement = ScrambledPlacement(IBM_3350, n_disks, db_pages)
        seen = set()
        for page in range(db_pages):
            disk, addr = placement.locate(page)
            key = (disk, addr.linear(IBM_3350))
            assert key not in seen
            seen.add(key)


class TestRingAllocator:
    def test_consecutive_addresses(self):
        ring = RingAllocator(IBM_3350, start_cylinder=500, n_cylinders=10)
        a, b = ring.take(2)
        assert b.linear(IBM_3350) == a.linear(IBM_3350) + 1
        assert a.cylinder == 500

    def test_wraps_at_region_end(self):
        ring = RingAllocator(IBM_3350, start_cylinder=554, n_cylinders=1)
        first = ring.take(1)[0]
        ring.take(IBM_3350.pages_per_cylinder - 1)
        wrapped = ring.take(1)[0]
        assert wrapped == first

    def test_take_counts_allocations(self):
        ring = RingAllocator(IBM_3350, 500, 5)
        ring.take(3)
        ring.take(2)
        assert ring.allocated == 5

    def test_region_validation(self):
        with pytest.raises(ValueError):
            RingAllocator(IBM_3350, 550, 10)  # runs past the last cylinder
        with pytest.raises(ValueError):
            RingAllocator(IBM_3350, 0, 0)

    def test_take_requires_positive(self):
        ring = RingAllocator(IBM_3350, 0, 1)
        with pytest.raises(ValueError):
            ring.take(0)
