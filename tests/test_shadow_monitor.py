"""The shadow install monitor: install only after the version is durable."""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import PageTableShadowArchitecture
from repro.sim import RandomStreams, ShadowInstallMonitor, ShadowInstallViolation
from repro.workload import TransactionStatus


class TestShadowInstallMonitor:
    def test_install_after_durable_is_clean(self):
        monitor = ShadowInstallMonitor()
        monitor.note_version_written(3, "v1")
        monitor.note_version_durable("v1")
        monitor.note_install(3)
        assert monitor.violations == 0
        assert monitor.installs == 1

    def test_install_of_volatile_version_raises(self):
        monitor = ShadowInstallMonitor(strict=True)
        monitor.note_version_written(3, "v1")
        with pytest.raises(ShadowInstallViolation):
            monitor.note_install(3)
        assert monitor.violations == 1

    def test_non_strict_counts_without_raising(self):
        monitor = ShadowInstallMonitor(strict=False)
        monitor.note_version_written(1, "v1")
        monitor.note_install(1)
        monitor.note_install(1)
        assert monitor.violations == 2

    def test_unrelated_page_unaffected(self):
        monitor = ShadowInstallMonitor()
        monitor.note_version_written(1, "v1")
        monitor.note_install(2)
        assert monitor.violations == 0

    def test_token_shared_by_pages_retires_everywhere(self):
        monitor = ShadowInstallMonitor()
        monitor.note_version_written(1, "batch")
        monitor.note_version_written(2, "batch")
        assert monitor.pending_pages == 2
        monitor.note_version_durable("batch")
        assert monitor.pending_pages == 0
        monitor.note_install(1)
        monitor.note_install(2)
        assert monitor.violations == 0

    def test_reset_clears_pending(self):
        monitor = ShadowInstallMonitor()
        monitor.note_version_written(1, "v1")
        monitor.reset()
        monitor.note_install(1)
        assert monitor.violations == 0

    def test_repr_mentions_state(self):
        monitor = ShadowInstallMonitor(name="m")
        assert "installs=0" in repr(monitor)


class TestMachineIntegration:
    def run_shadow(self, monitor):
        config = MachineConfig()
        machine = DatabaseMachine(
            config, PageTableShadowArchitecture(), shadow_monitor=monitor
        )
        txns = generate_transactions(
            WorkloadConfig(n_transactions=6, max_pages=40),
            config.db_pages,
            RandomStreams(11).stream("workload"),
        )
        return machine.run(txns), txns

    def test_shadow_run_satisfies_install_rule(self, shadow_monitor):
        result, txns = self.run_shadow(shadow_monitor)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert shadow_monitor.installs > 0
        assert shadow_monitor.durables > 0
        assert shadow_monitor.violations == 0

    def test_installs_cover_every_updated_page(self, shadow_monitor):
        result, txns = self.run_shadow(shadow_monitor)
        committed_updates = sum(
            len(t.write_pages)
            for t in txns
            if t.status is TransactionStatus.COMMITTED
        )
        assert shadow_monitor.installs >= committed_updates
