"""Shared fixtures for the test suite."""

import pytest

from repro.sim.monitor import ShadowInstallMonitor, WALInvariantMonitor


@pytest.fixture
def wal_monitor():
    """A strict runtime WAL checker.

    Attach it with ``DatabaseMachine(..., wal_monitor=wal_monitor)`` or
    ``DistributedWalManager(monitor=wal_monitor)``; any dirty page flushed
    before its recovery data is forced raises inside the run.  Teardown
    re-asserts that no violation was recorded, so even a non-strict user
    of the fixture cannot pass while breaking the WAL rule.
    """
    monitor = WALInvariantMonitor(strict=True)
    yield monitor
    assert monitor.violations == 0, monitor


@pytest.fixture
def shadow_monitor():
    """A strict runtime checker of the shadow install rule.

    Attach it with ``DatabaseMachine(..., shadow_monitor=shadow_monitor)``;
    any page-table install pointing at a version still in flight raises
    inside the run.  Teardown re-asserts zero violations, mirroring the
    ``wal_monitor`` fixture.
    """
    monitor = ShadowInstallMonitor(strict=True)
    yield monitor
    assert monitor.violations == 0, monitor
