"""Unit tests for the functional differential-file manager."""

import pytest

from repro.storage import DifferentialFileManager


@pytest.fixture
def diff():
    return DifferentialFileManager()


class TestTupleLevelApi:
    def test_insert_visible_after_commit(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("alice", 1))
        assert diff.read_relation("emp") == frozenset()
        diff.commit(tid)
        assert diff.read_relation("emp") == {("alice", 1)}

    def test_read_your_writes_tuple_level(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("bob", 2))
        assert diff.read_relation("emp", tid) == {("bob", 2)}

    def test_delete_appends_to_d_file(self, diff):
        t1 = diff.begin()
        diff.insert(t1, "emp", ("alice", 1))
        diff.commit(t1)
        t2 = diff.begin()
        diff.delete(t2, "emp", ("alice", 1))
        diff.commit(t2)
        assert diff.read_relation("emp") == frozenset()
        a, d = diff.differential_sizes()
        assert a == 1 and d == 1  # base never touched; both files grew

    def test_relations_are_independent(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("a",))
        diff.insert(tid, "dept", ("d",))
        diff.commit(tid)
        assert diff.read_relation("emp") == {("a",)}
        assert diff.read_relation("dept") == {("d",)}

    def test_abort_discards_buffered_changes(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("ghost",))
        diff.abort(tid)
        assert diff.read_relation("emp") == frozenset()
        assert diff.differential_sizes() == (0, 0)

    def test_view_semantics_b_union_a_minus_d(self, diff):
        # Seed the base file directly.
        diff.stable.append("base", ("emp", ("base-row",)))
        t1 = diff.begin()
        diff.insert(t1, "emp", ("added",))
        diff.delete(t1, "emp", ("base-row",))
        diff.commit(t1)
        assert diff.read_relation("emp") == {("added",)}


class TestCrashAtomicity:
    def test_uncommitted_buffer_lost(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("ghost",))
        diff.crash()
        diff.recover()
        assert diff.read_relation("emp") == frozenset()

    def test_committed_survives(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("kept",))
        diff.commit(tid)
        diff.crash()
        diff.recover()
        assert diff.read_relation("emp") == {("kept",)}

    def test_torn_append_run_truncated(self, diff):
        """A crash between the appends and the commit record leaves dead
        tid-tagged records; recovery sweeps them."""
        tid = diff.begin()
        diff.insert(tid, "emp", ("kept",))
        diff.commit(tid)
        # Simulate a torn commit: records appended, no commit record.
        diff.stable.append("a_file", ("add", 999, ("emp", ("torn",))))
        diff.crash()
        diff.recover()
        assert diff.read_relation("emp") == {("kept",)}
        a, _d = diff.differential_sizes()
        assert a == 1

    def test_partial_commit_never_splits_adds_from_dels(self, diff):
        """The commit point is one record in the shared commit file, so a
        crash can never commit a transaction's deletions without its
        additions (the failure mode of per-file commit markers)."""
        t1 = diff.begin()
        diff.insert(t1, "emp", ("old",))
        diff.commit(t1)
        t2 = diff.begin()
        diff.delete(t2, "emp", ("old",))
        diff.insert(t2, "emp", ("new",))
        # Simulate a crash mid-commit: records land, commit record does not.
        diff.stable.append("a_file", ("add", t2, ("emp", ("new",))))
        diff.stable.append("d_file", ("del", t2, ("emp", ("old",))))
        diff.crash()
        diff.recover()
        assert diff.read_relation("emp") == {("old",)}


class TestMerge:
    def test_merge_folds_diffs_into_base(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("row1",))
        diff.insert(tid, "emp", ("row2",))
        diff.commit(tid)
        t2 = diff.begin()
        diff.delete(t2, "emp", ("row1",))
        diff.commit(t2)
        size = diff.merge()
        assert size == 1
        assert diff.differential_sizes() == (0, 0)
        assert diff.read_relation("emp") == {("row2",)}

    def test_merge_then_more_updates(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("a",))
        diff.commit(tid)
        diff.merge()
        t2 = diff.begin()
        diff.insert(t2, "emp", ("b",))
        diff.commit(t2)
        assert diff.read_relation("emp") == {("a",), ("b",)}

    def test_merge_survives_crash(self, diff):
        tid = diff.begin()
        diff.insert(tid, "emp", ("m",))
        diff.commit(tid)
        diff.merge()
        diff.crash()
        diff.recover()
        assert diff.read_relation("emp") == {("m",)}


class TestPageAdapter:
    def test_page_write_read_cycle(self, diff):
        tid = diff.begin()
        diff.write(tid, 1, b"page-data")
        diff.commit(tid)
        assert diff.read_committed(1) == b"page-data"

    def test_rewrite_same_value_later(self, diff):
        """Re-inserting a previously deleted value must not vanish (the
        set-semantics pitfall; solved by version-stamped rows)."""
        for value in (b"x", b"y", b"x"):
            tid = diff.begin()
            diff.write(tid, 1, value)
            diff.commit(tid)
        assert diff.read_committed(1) == b"x"

    def test_differential_growth_per_update(self, diff):
        for i in range(3):
            tid = diff.begin()
            diff.write(tid, 1, b"%d" % i)
            diff.commit(tid)
        a, d = diff.differential_sizes()
        assert a == 3 and d == 2  # each rewrite deletes the previous row
