"""Property-based tests for the discrete-event kernel.

The kernel is the foundation of every result in this repository; these
properties pin down the guarantees the models rely on: monotonic time,
deterministic tie-breaking, FIFO resources, and conservation in containers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Resource


@settings(max_examples=60)
@given(delays=st.lists(st.floats(min_value=0, max_value=1000), max_size=30))
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=60)
@given(delays=st.lists(st.floats(min_value=0, max_value=100), max_size=20))
def test_clock_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def ticker(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(ticker(env, delay))
    last = -1.0
    while env.peek() != float("inf"):
        env.step()
        assert env.now >= last
        last = env.now


@settings(max_examples=40)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=1, max_value=15),
)
def test_same_program_same_trace(seed, n):
    """Determinism: running the identical program twice gives the identical
    event trace (the property the experiments' comparability rests on)."""
    import random

    def run():
        rng = random.Random(seed)
        env = Environment()
        trace = []

        def worker(env, name):
            for _ in range(3):
                yield env.timeout(rng.random() * 10)
                trace.append((env.now, name))

        for i in range(n):
            env.process(worker(env, i))
        env.run()
        return trace

    assert run() == run()


@settings(max_examples=40)
@given(holds=st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=15))
def test_unit_resource_is_fifo_and_work_conserving(holds):
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def worker(env, index, hold):
        with resource.request() as grant:
            yield grant
            order.append(index)
            yield env.timeout(hold)

    for index, hold in enumerate(holds):
        env.process(worker(env, index, hold))
    env.run()
    assert order == list(range(len(holds)))  # FIFO
    assert env.now == sum(holds)  # no idle gaps with a full queue


@settings(max_examples=40)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    holds=st.lists(st.floats(min_value=0.1, max_value=5), min_size=1, max_size=20),
)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = [0]

    def worker(env, hold):
        with resource.request() as grant:
            yield grant
            peak[0] = max(peak[0], resource.count)
            yield env.timeout(hold)

    for hold in holds:
        env.process(worker(env, hold))
    env.run()
    assert peak[0] <= capacity


@settings(max_examples=40)
@given(
    amounts=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=20)
)
def test_container_conserves_level(amounts):
    env = Environment()
    box = Container(env, capacity=1000, init=100)

    def churn(env, amount):
        yield box.get(amount)
        yield env.timeout(1)
        yield box.put(amount)

    for amount in amounts:
        env.process(churn(env, amount))
    env.run()
    assert box.level == 100
