"""Unit tests for resources, stores, and containers."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, SimulationError, Store


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        env.run()
        assert r1.processed and r2.processed
        assert not r3.triggered
        assert res.count == 2

    def test_release_grants_next_fifo(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(env, res, name, hold):
            with res.request() as req:
                yield req
                order.append((env.now, name))
                yield env.timeout(hold)

        env.process(worker(env, res, "a", 3))
        env.process(worker(env, res, "b", 2))
        env.process(worker(env, res, "c", 1))
        env.run()
        assert order == [(0, "a"), (3, "b"), (5, "c")]

    def test_context_manager_releases(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(1)

        env.process(worker(env, res))
        env.run()
        assert res.count == 0

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        held = res.request()
        queued = res.request()
        queued.cancel()
        res.release(held)
        env.run()
        assert not queued.triggered
        assert res.count == 0

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestPriorityResource:
    def test_lower_priority_number_served_first(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def worker(env, res, name, priority):
            with res.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        def submit(env):
            # Occupy, then queue others while held.
            with res.request(priority=0) as req:
                yield req
                order.append("first")
                env.process(worker(env, res, "low", 5))
                env.process(worker(env, res, "high", 1))
                yield env.timeout(1)

        env.process(submit(env))
        env.run()
        assert order == ["first", "high", "low"]

    def test_fifo_within_priority(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        held = res.request(priority=0)
        a = res.request(priority=1)
        b = res.request(priority=1)
        res.release(held)
        env.run()
        assert a.processed and not b.triggered


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            yield store.put("x")
            item = yield store.get()
            return item

        assert env.run(until=env.process(proc(env))) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(4)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(4, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        out = []

        def proc(env):
            for i in range(3):
                yield store.put(i)
            for _ in range(3):
                item = yield store.get()
                out.append(item)

        env.process(proc(env))
        env.run()
        assert out == [0, 1, 2]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("a")
            times.append(env.now)
            yield store.put("b")
            times.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0, 5]

    def test_filtered_get(self):
        env = Environment()
        store = Store(env)
        out = []

        def proc(env):
            yield store.put({"to": 1})
            yield store.put({"to": 2})
            item = yield store.get(lambda m: m["to"] == 2)
            out.append(item)

        env.process(proc(env))
        env.run()
        assert out == [{"to": 2}]
        assert store.items == [{"to": 1}]

    def test_filtered_get_does_not_block_others(self):
        env = Environment()
        store = Store(env)
        out = []

        def picky(env):
            item = yield store.get(lambda m: m == "never")
            out.append(item)

        def normal(env):
            item = yield store.get()
            out.append(item)

        def producer(env):
            yield store.put("x")

        env.process(picky(env))
        env.process(normal(env))
        env.process(producer(env))
        env.run()
        assert out == ["x"]

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Environment(), capacity=0)


class TestContainer:
    def test_level_tracking(self):
        env = Environment()
        box = Container(env, capacity=10, init=4)
        assert box.level == 4

        def proc(env):
            yield box.get(3)
            yield box.put(5)

        env.process(proc(env))
        env.run()
        assert box.level == 6

    def test_get_blocks_until_enough(self):
        env = Environment()
        box = Container(env, capacity=10, init=0)
        times = []

        def consumer(env):
            yield box.get(2)
            times.append(env.now)

        def producer(env):
            yield env.timeout(1)
            yield box.put(1)
            yield env.timeout(1)
            yield box.put(1)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [2]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        box = Container(env, capacity=2, init=2)
        times = []

        def producer(env):
            yield box.put(1)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(3)
            yield box.get(1)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [3]

    def test_init_validation(self):
        with pytest.raises(SimulationError):
            Container(Environment(), capacity=2, init=3)

    def test_nonpositive_amounts_rejected(self):
        env = Environment()
        box = Container(env, capacity=5, init=1)
        with pytest.raises(SimulationError):
            box.get(0)
        with pytest.raises(SimulationError):
            box.put(-1)
