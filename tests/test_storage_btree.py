"""Tests for the crash-safe B+tree index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    DistributedWalManager,
    OverwriteVariant,
    OverwritingManager,
    ShadowPageTableManager,
)
from repro.storage.btree import BTree, KeyTooLargeError

MANAGERS = {
    "wal": lambda: DistributedWalManager(n_logs=2),
    "shadow": ShadowPageTableManager,
    "no-undo": lambda: OverwritingManager(OverwriteVariant.NO_UNDO),
}


@pytest.fixture(params=sorted(MANAGERS), ids=sorted(MANAGERS))
def manager(request):
    return MANAGERS[request.param]()


def committed_insert(manager, tree, pairs):
    tid = manager.begin()
    for key, value in pairs:
        tree.insert(tid, key, value)
    manager.commit(tid)


class TestBTreeBasics:
    def test_empty_tree(self, manager):
        tree = BTree(manager, file_id=7)
        assert tree.search(None, b"missing") is None
        assert list(tree.entries()) == []
        assert tree.height() == 0
        assert len(tree) == 0

    def test_insert_and_search(self, manager):
        tree = BTree(manager, file_id=7)
        committed_insert(manager, tree, [(b"b", b"2"), (b"a", b"1"), (b"c", b"3")])
        assert tree.search(None, b"a") == b"1"
        assert tree.search(None, b"b") == b"2"
        assert tree.search(None, b"c") == b"3"
        assert tree.search(None, b"d") is None

    def test_overwrite_existing_key(self, manager):
        tree = BTree(manager, file_id=7)
        committed_insert(manager, tree, [(b"k", b"old")])
        committed_insert(manager, tree, [(b"k", b"new")])
        assert tree.search(None, b"k") == b"new"
        assert len(tree) == 1

    def test_entries_sorted(self, manager):
        tree = BTree(manager, file_id=7)
        keys = [b"m", b"a", b"z", b"q", b"c"]
        committed_insert(manager, tree, [(k, k.upper()) for k in keys])
        assert [k for k, _v in tree.entries()] == sorted(keys)

    def test_range_scan(self, manager):
        tree = BTree(manager, file_id=7)
        committed_insert(
            manager, tree, [(b"%02d" % i, b"v%d" % i) for i in range(20)]
        )
        window = [k for k, _v in tree.entries(low=b"05", high=b"10")]
        assert window == [b"%02d" % i for i in range(5, 10)]

    def test_delete(self, manager):
        tree = BTree(manager, file_id=7)
        committed_insert(manager, tree, [(b"a", b"1"), (b"b", b"2")])
        tid = manager.begin()
        assert tree.delete(tid, b"a")
        assert not tree.delete(tid, b"a")
        manager.commit(tid)
        assert tree.search(None, b"a") is None
        assert tree.search(None, b"b") == b"2"

    def test_non_bytes_rejected(self, manager):
        tree = BTree(manager, file_id=7)
        tid = manager.begin()
        with pytest.raises(TypeError):
            tree.insert(tid, "str-key", b"v")

    def test_giant_pair_rejected(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        tid = manager.begin()
        with pytest.raises(KeyTooLargeError):
            tree.insert(tid, b"k" * 300, b"v")


class TestSplits:
    def test_tree_grows_in_height(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        committed_insert(
            manager, tree, [(b"key-%04d" % i, b"val-%04d" % i) for i in range(100)]
        )
        assert tree.height() >= 2
        assert len(tree) == 100
        for i in range(0, 100, 11):
            assert tree.search(None, b"key-%04d" % i) == b"val-%04d" % i

    def test_descending_inserts(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        committed_insert(
            manager, tree, [(b"%04d" % i, b"x") for i in reversed(range(80))]
        )
        assert [k for k, _v in tree.entries()] == [b"%04d" % i for i in range(80)]

    def test_leaf_chain_survives_splits(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        committed_insert(manager, tree, [(b"%03d" % i, b"v") for i in range(60)])
        # A full scan must visit every key exactly once, in order.
        scanned = [k for k, _v in tree.entries()]
        assert scanned == sorted(scanned)
        assert len(scanned) == 60


class TestCrashSafety:
    def test_committed_index_survives(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        committed_insert(manager, tree, [(b"%03d" % i, b"v") for i in range(50)])
        manager.crash()
        manager.recover()
        assert len(tree) == 50
        assert tree.search(None, b"025") == b"v"

    def test_uncommitted_inserts_vanish_even_mid_split(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        committed_insert(manager, tree, [(b"%03d" % i, b"v") for i in range(30)])
        tid = manager.begin()
        for i in range(30, 60):
            tree.insert(tid, b"%03d" % i, b"ghost")  # forces splits
        manager.crash()
        manager.recover()
        assert len(tree) == 30
        assert tree.search(None, b"045") is None
        # Structure intact after the rollback.
        assert [k for k, _v in tree.entries()] == [b"%03d" % i for i in range(30)]

    def test_aborted_split_rolls_back(self, manager):
        tree = BTree(manager, file_id=7, page_size=256)
        committed_insert(manager, tree, [(b"%03d" % i, b"v") for i in range(30)])
        height_before = tree.height()
        tid = manager.begin()
        for i in range(30, 100):
            tree.insert(tid, b"%03d" % i, b"x")
        manager.abort(tid)
        assert tree.height() == height_before
        assert len(tree) == 30


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "crash"]),
            st.binary(min_size=1, max_size=8),
            st.binary(min_size=0, max_size=8),
        ),
        max_size=40,
    )
)
def test_btree_matches_sorted_dict_model(ops):
    """Model-based: committed tree contents equal a dict, in sorted order,
    through puts, deletes, and crash-after-uncommitted interleavings."""
    manager = DistributedWalManager(n_logs=2)
    tree = BTree(manager, file_id=3, page_size=256)
    model = {}
    for action, key, value in ops:
        if action == "put":
            tid = manager.begin()
            tree.insert(tid, key, value)
            manager.commit(tid)
            model[key] = value
        elif action == "delete":
            tid = manager.begin()
            existed = tree.delete(tid, key)
            manager.commit(tid)
            assert existed == (key in model)
            model.pop(key, None)
        else:
            tid = manager.begin()
            tree.insert(tid, key, b"uncommitted")
            manager.crash()
            manager.recover()
    assert list(tree.entries()) == sorted(model.items())
