"""The unified architecture registry and its CLI helpers.

The registry is the single source of truth both layers derive their
name tables from, so these tests pin the cross-layer consistency the
old scattered dicts could silently lose: every functional manager's
``name`` is registered, every entry's sim factory describes itself with
its own prefix, the legacy dicts are the registry's dicts (not copies),
and — the core guarantee — every registered manager passes the
committed-prefix crashtest oracle on a shared (seed, workload,
crash-budget) matrix.
"""

import argparse

import pytest

import repro.registry as registry
from repro.experiments import tracing
from repro.faults import harness, run_crashtest
from repro.registry import (
    ARCHITECTURES,
    REGISTRY,
    SIM_ARCHITECTURES,
    add_arch_argument,
    entry_for,
    entry_for_sim,
    machine_overrides,
    resolve_archs,
    survive_factory,
)

ARCH_NAMES = sorted(ARCHITECTURES)


class TestRegistryConsistency:
    def test_legacy_dicts_are_the_registry_dicts(self):
        # Identity, not equality: the fault tests monkeypatch throw-away
        # entries into the harness dict and the registry must see them.
        assert harness.ARCHITECTURES is ARCHITECTURES
        assert tracing.SIM_ARCHITECTURES is SIM_ARCHITECTURES

    def test_every_entry_has_a_sim(self):
        for entry in REGISTRY.values():
            assert entry.sim_name in SIM_ARCHITECTURES

    def test_manager_names_are_stable(self):
        expected = {
            "wal": "distributed-wal",
            "shadow": "shadow-page-table",
            "versions": "version-selection",
            "overwrite": "overwriting",
            "differential": "differential-files",
            "command": "command-logging",
            "redo": "redo-only-wal",
        }
        for key, manager_name in expected.items():
            assert entry_for(key).manager().name == manager_name

    def test_sim_describe_matches_sim_name_prefix(self):
        # The restart estimator dispatches on describe() prefixes, so a
        # registered sim must describe itself under its registered name
        # (the paper's logging architecture keeps its historical prefix).
        for entry in REGISTRY.values():
            described = entry.sim().describe()
            if entry.name == "wal":
                assert described.startswith("logging")
            else:
                assert described.startswith(entry.sim_name)

    def test_lp_failover_entries_run_quorum(self):
        for entry in REGISTRY.values():
            if not entry.lp_failover:
                continue
            arch = survive_factory(entry.name)()
            assert arch.config_log.n_log_processors >= 3

    def test_versions_overrides_halve_the_database(self):
        assert machine_overrides("versions") == {"db_pages": 60_000}
        assert machine_overrides("version-selection") == {"db_pages": 60_000}
        assert machine_overrides("wal") == {}

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            entry_for("nope")
        with pytest.raises(ValueError):
            entry_for_sim("nope")
        with pytest.raises(ValueError):
            survive_factory("bare")


class TestCliHelpers:
    def test_add_arch_argument_offers_all(self):
        parser = argparse.ArgumentParser()
        add_arch_argument(parser)
        assert parser.parse_args([]).arch == "all"
        assert parser.parse_args(["--arch", "redo"]).arch == "redo"
        with pytest.raises(SystemExit):
            parser.parse_args(["--arch", "nope"])

    def test_add_arch_argument_sim_names(self):
        parser = argparse.ArgumentParser()
        add_arch_argument(parser, SIM_ARCHITECTURES, default="logging")
        assert parser.parse_args([]).arch == "logging"
        assert parser.parse_args(["--arch", "redo-wal"]).arch == "redo-wal"

    def test_resolve_archs_expands_all(self):
        assert resolve_archs("all") == ARCH_NAMES
        assert resolve_archs("wal") == ["wal"]
        assert resolve_archs("all", SIM_ARCHITECTURES) == sorted(
            SIM_ARCHITECTURES
        )


class TestCommittedPrefixMatrix:
    """Every registered manager against the same crash-point matrix."""

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    @pytest.mark.parametrize("seed", [11, 1985])
    def test_oracle_holds(self, arch, seed):
        report = run_crashtest(arch, seed, n_transactions=6, budget=12)
        assert report.ok, report.violations
        assert report.points_tested
