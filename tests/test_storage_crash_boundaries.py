"""Crash at *every* operation boundary, for every manager (property test).

The harness's sweep samples hook crossings inside operations; this test
pins down the coarser invariant exhaustively: a crash between any two
operations of a workload must recover to exactly the committed prefix,
on all five architectures.
"""

import pytest

from repro.faults import (
    ARCHITECTURES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    generate_ops,
    run_scenario,
)

ARCH_NAMES = sorted(ARCHITECTURES)
SEED = 29
N_TRANSACTIONS = 6


@pytest.mark.parametrize("arch", ARCH_NAMES)
def test_crash_at_every_op_boundary_recovers(arch):
    ops = generate_ops(SEED, n_transactions=N_TRANSACTIONS)
    for boundary in range(1, len(ops) + 1):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="op-boundary", occurrence=boundary),
            seed=SEED,
        )
        result = run_scenario(
            arch, SEED, plan, n_transactions=N_TRANSACTIONS
        )
        assert result.ok, (
            f"{arch}: boundary {boundary}/{len(ops)} before {ops[boundary - 1]!r} "
            f"-> {result.violations}"
        )
        # A boundary crash never lands inside commit(), so the in-flight
        # ambiguity does not apply: the state is exactly the committed
        # prefix.
        assert result.outcome == "rolled-back"


@pytest.mark.parametrize("arch", ARCH_NAMES)
def test_boundary_crashes_are_deterministic(arch):
    plan = FaultPlan.of(
        FaultSpec(FaultKind.CRASH, hook="op-boundary", occurrence=9), seed=SEED
    )
    first = run_scenario(arch, SEED, plan, n_transactions=N_TRANSACTIONS)
    second = run_scenario(arch, SEED, plan, n_transactions=N_TRANSACTIONS)
    assert first.dump == second.dump
    assert first.crashed_at == second.crashed_at
