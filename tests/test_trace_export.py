"""Unit tests for the trace exporters (repro.trace.export)."""

import json

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.sim import RandomStreams
from repro.trace import (
    Tracer,
    render_flame,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_json,
)


class Clock:
    def __init__(self):
        self.now = 0.0


def small_tracer():
    tracer = Tracer(env=Clock())
    root = tracer.begin("txn", tid=1)
    read = tracer.begin("io.data.read", parent=root, page=7)
    tracer.env.now = 3.0
    tracer.end(read)
    disk = tracer.begin("disk.service", track="data-disk-0")
    tracer.env.now = 5.0
    tracer.end(disk)
    tracer.instant("page.durable", tid=1, page=7)
    tracer.end(root, status="committed", window_start=0.0, window_end=5.0)
    return tracer


class TestChromeTrace:
    def test_schema_and_microsecond_timestamps(self):
        events = to_chrome_trace(small_tracer())
        assert validate_chrome_trace(events) == 4  # 3 spans + 1 instant
        read = next(e for e in events if e["name"] == "io.data.read")
        assert read["ph"] == "X"
        assert read["ts"] == 0.0 and read["dur"] == 3000.0  # ms -> us
        assert read["args"] == {"page": 7}

    def test_device_rows_get_synthetic_tids(self):
        events = to_chrome_trace(small_tracer())
        disk = next(e for e in events if e["name"] == "disk.service")
        assert disk["tid"] >= 100_000
        names = {
            e["tid"]: e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert names[disk["tid"]] == "data-disk-0"
        assert names[1] == "txn 1"

    def test_open_spans_skipped(self):
        tracer = Tracer(env=Clock())
        tracer.begin("txn", tid=1)  # never ended
        closed = tracer.begin("commit", tid=1)
        tracer.end(closed)
        names = [e["name"] for e in to_chrome_trace(tracer) if e["ph"] == "X"]
        assert names == ["commit"]

    def test_events_ordered_by_time_then_seq(self):
        events = [e for e in to_chrome_trace(small_tracer()) if e["ph"] != "M"]
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)


class TestValidate:
    def base(self):
        return to_chrome_trace(small_tracer())

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace([])

    def test_rejects_missing_key(self):
        events = self.base()
        del events[-1]["ts"]
        with pytest.raises(ValueError, match="bad ts"):
            validate_chrome_trace(events)

    def test_rejects_uncatalogued_name(self):
        events = self.base()
        events[-1]["name"] = "made.up"
        with pytest.raises(ValueError, match="not in catalogue"):
            validate_chrome_trace(events)

    def test_rejects_time_travel(self):
        events = self.base()
        events[-1]["ts"] = -1.0
        with pytest.raises(ValueError, match="bad ts"):
            validate_chrome_trace(events)


class TestWriteJson:
    def test_stable_round_trip(self, tmp_path):
        events = to_chrome_trace(small_tracer())
        path = tmp_path / "trace.json"
        write_json(events, str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(events, sort_keys=True)
        )
        assert path.read_text().endswith("\n")


class TestTerminalViews:
    def test_timeline_renders_lane_per_transaction(self):
        text = render_timeline(small_tracer())
        assert "phase legend" in text
        assert "T1" in text
        assert "r" in text  # io.data.read strip

    def test_timeline_empty_trace(self):
        assert "no transaction spans" in render_timeline(Tracer(env=Clock()))

    def test_flame_percentages_and_total(self):
        text = render_flame({"qp.exec": 6.0, "lock.wait": 2.0}, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "75.0%" in text and "25.0%" in text
        assert lines[-1].startswith("total") and "8.0 ms" in lines[-1]

    def test_flame_empty(self):
        assert render_flame({}) == "(empty breakdown)"


def traced_run(seed):
    tracer = Tracer()
    config = MachineConfig(mpl=2)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=4, max_pages=30),
        config.db_pages,
        RandomStreams(seed).stream("workload"),
    )
    machine = DatabaseMachine(
        config, ParallelLoggingArchitecture(LoggingConfig()), tracer=tracer
    )
    machine.run(txns)
    return tracer


class TestDeterminism:
    def test_same_seed_traces_are_byte_identical(self, tmp_path):
        paths = []
        for i in (1, 2):
            events = to_chrome_trace(traced_run(seed=11))
            path = tmp_path / f"run{i}.json"
            write_json(events, str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_different_seeds_differ(self, tmp_path):
        a = to_chrome_trace(traced_run(seed=11))
        b = to_chrome_trace(traced_run(seed=12))
        assert a != b
