"""Trajectory differ: tolerance directions, coverage gates, rendering."""

import copy
import json

import pytest

from repro.bench import (
    SELFTEST_GRID,
    compare_payloads,
    diff_dirs,
    gate,
    render_entries,
    run_grid,
)


@pytest.fixture(scope="module")
def payload():
    return json.loads(run_grid(SELFTEST_GRID).canonical_json())


def kinds(entries):
    return sorted({entry.kind for entry in entries})


def scale_metric(payload, factor, metric="cost_ms", index=0):
    tampered = copy.deepcopy(payload)
    tampered["cells"][index]["metrics"][metric] *= factor
    return tampered


class TestTolerance:
    def test_identical_payloads_all_unchanged(self, payload):
        entries = compare_payloads("selftest", payload, payload)
        assert kinds(entries) == ["unchanged"]
        assert gate(entries)

    def test_drift_within_tolerance_passes(self, payload):
        entries = compare_payloads(
            "selftest", payload, scale_metric(payload, 1.05)
        )
        assert kinds(entries) == ["unchanged"]

    def test_regression_beyond_tolerance_gates(self, payload):
        # selftest tolerance is 0.10 and cost_ms is lower-is-better.
        entries = compare_payloads(
            "selftest", payload, scale_metric(payload, 1.5)
        )
        regressions = [e for e in entries if e.kind == "regression"]
        assert len(regressions) == 1
        assert regressions[0].gating
        assert regressions[0].rel_delta == pytest.approx(0.5)
        assert not gate(entries)

    def test_improvement_is_reported_not_gated(self, payload):
        entries = compare_payloads(
            "selftest", payload, scale_metric(payload, 0.5)
        )
        improvements = [e for e in entries if e.kind == "improvement"]
        assert len(improvements) == 1
        assert not improvements[0].gating
        assert gate(entries)

    def test_higher_is_better_flips_direction(self, payload):
        flipped = copy.deepcopy(payload)
        flipped["primary_metric"] = "throughput"
        flipped["higher_is_better"] = True
        lower = scale_metric(flipped, 0.5, metric="throughput")
        entries = compare_payloads("selftest", flipped, lower)
        assert [e.kind for e in entries if e.gating] == ["regression"]
        higher = scale_metric(flipped, 2.0, metric="throughput")
        assert gate(compare_payloads("selftest", flipped, higher))

    def test_tolerance_override_widens_the_gate(self, payload):
        current = scale_metric(payload, 1.5)
        assert not gate(compare_payloads("selftest", payload, current))
        assert gate(
            compare_payloads("selftest", payload, current, tolerance=0.60)
        )

    def test_zero_baseline_uses_unit_denominator(self, payload):
        base = copy.deepcopy(payload)
        base["cells"][0]["metrics"]["cost_ms"] = 0.0
        current = copy.deepcopy(base)
        current["cells"][0]["metrics"]["cost_ms"] = 0.05
        entries = compare_payloads("selftest", base, current)
        moved = [e for e in entries if e.rel_delta]
        assert moved[0].rel_delta == pytest.approx(0.05)  # /1.0, not /0


class TestCoverage:
    def test_dropped_cell_gates(self, payload):
        current = copy.deepcopy(payload)
        current["cells"] = current["cells"][1:]
        entries = compare_payloads("selftest", payload, current)
        dropped = [e for e in entries if e.kind == "cell-dropped"]
        assert len(dropped) == 1 and dropped[0].gating
        assert "refresh the committed baseline" in dropped[0].message
        assert not gate(entries)

    def test_added_cell_is_a_notice(self, payload):
        baseline = copy.deepcopy(payload)
        baseline["cells"] = baseline["cells"][1:]
        entries = compare_payloads("selftest", baseline, payload)
        added = [e for e in entries if e.kind == "cell-added"]
        assert len(added) == 1 and not added[0].gating
        assert gate(entries)

    def test_spec_change_is_a_notice(self, payload):
        current = copy.deepcopy(payload)
        current["grid_id"] = "f" * 16
        entries = compare_payloads("selftest", payload, current)
        spec = [e for e in entries if e.kind == "spec-changed"]
        assert len(spec) == 1 and not spec[0].gating


class TestDiffDirs:
    def _write(self, directory, payload):
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{payload['name']}.json"
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")

    def test_matching_dirs_pass(self, payload, tmp_path):
        self._write(tmp_path / "root", payload)
        self._write(tmp_path / "out", payload)
        entries = diff_dirs(str(tmp_path / "root"), str(tmp_path / "out"))
        assert gate(entries)

    def test_grid_dropped_gates(self, payload, tmp_path):
        self._write(tmp_path / "root", payload)
        (tmp_path / "out").mkdir()
        entries = diff_dirs(str(tmp_path / "root"), str(tmp_path / "out"))
        assert [e.kind for e in entries] == ["grid-dropped"]
        assert not gate(entries)

    def test_grid_added_is_a_notice(self, payload, tmp_path):
        (tmp_path / "root").mkdir()
        self._write(tmp_path / "out", payload)
        entries = diff_dirs(str(tmp_path / "root"), str(tmp_path / "out"))
        assert [e.kind for e in entries] == ["grid-added"]
        assert gate(entries)

    def test_corrupt_artifact_gates_as_schema_error(self, payload, tmp_path):
        self._write(tmp_path / "root", payload)
        out = tmp_path / "out"
        out.mkdir()
        (out / "BENCH_selftest.json").write_text("{not json")
        entries = diff_dirs(str(tmp_path / "root"), str(out))
        assert any(e.kind == "schema-error" and e.gating for e in entries)
        assert not gate(entries)

    def test_name_filter(self, payload, tmp_path):
        self._write(tmp_path / "root", payload)
        self._write(tmp_path / "out", payload)
        entries = diff_dirs(
            str(tmp_path / "root"), str(tmp_path / "out"), names=["other"]
        )
        assert entries == []


class TestRender:
    def test_failures_lead_and_counts_close(self, payload):
        entries = compare_payloads(
            "selftest", payload, scale_metric(payload, 1.5)
        )
        text = render_entries(entries)
        lines = text.splitlines()
        assert lines[0].startswith("FAIL regression")
        assert "1 regressions" in lines[-1]
        assert "1 gating findings" in lines[-1]

    def test_verbose_includes_unchanged_cells(self, payload):
        entries = compare_payloads("selftest", payload, payload)
        assert "  ok selftest" not in render_entries(entries)
        assert "  ok selftest" in render_entries(entries, verbose=True)
