"""Unit tests for the indexed processor pool."""

import pytest

from repro.hardware import VAX_11_750
from repro.machine import ProcessorPool
from repro.sim import Environment


class TestProcessorPool:
    def test_execute_ms_serializes_on_capacity(self):
        env = Environment()
        pool = ProcessorPool(env, 1, VAX_11_750)
        done = []

        def job(env, n):
            yield from pool.execute_ms(5)
            done.append((env.now, n))

        env.process(job(env, 1))
        env.process(job(env, 2))
        env.run()
        assert done == [(5, 1), (10, 2)]

    def test_parallel_when_capacity_allows(self):
        env = Environment()
        pool = ProcessorPool(env, 2, VAX_11_750)
        done = []

        def job(env, n):
            yield from pool.execute_ms(5)
            done.append(env.now)

        env.process(job(env, 1))
        env.process(job(env, 2))
        env.run()
        assert done == [5, 5]

    def test_indices_unique_while_held(self):
        env = Environment()
        pool = ProcessorPool(env, 3, VAX_11_750)
        held = []

        def job(env):
            index, grant = yield from pool.acquire()
            held.append(index)
            yield env.timeout(1)
            pool.release(index, grant)

        for _ in range(3):
            env.process(job(env))
        env.run()
        assert sorted(held) == [0, 1, 2]

    def test_execute_instructions_uses_mips(self):
        env = Environment()
        pool = ProcessorPool(env, 1, VAX_11_750)

        def job(env):
            yield from pool.execute_instructions(650)
            return env.now

        # 650 instructions at 0.65 MIPS = 1 ms.
        assert env.run(until=env.process(job(env))) == pytest.approx(1.0)

    def test_utilization(self):
        env = Environment()
        pool = ProcessorPool(env, 2, VAX_11_750)

        def job(env):
            yield from pool.execute_ms(10)

        env.process(job(env))
        env.run(until=10)
        # 1 of 2 processors busy the whole time.
        assert pool.utilization(10) == pytest.approx(0.5)

    def test_jobs_counted(self):
        env = Environment()
        pool = ProcessorPool(env, 2, VAX_11_750)

        def job(env):
            yield from pool.execute_ms(1)

        for _ in range(5):
            env.process(job(env))
        env.run()
        assert pool.jobs.count == 5

    def test_busy_count(self):
        env = Environment()
        pool = ProcessorPool(env, 2, VAX_11_750)

        def job(env):
            yield from pool.execute_ms(10)

        env.process(job(env))
        env.run(until=5)
        assert pool.busy_count == 1
