"""The scrubtest harness: oracles, report shape, and determinism."""

import json

import pytest

from repro.registry import ARCHITECTURES
from repro.resilience import (
    CORRUPTION_TARGETS,
    run_clean_scenario,
    run_corruption_scenario,
    run_scrubtest,
)

ARCHS = sorted(ARCHITECTURES)


class TestCleanScenario:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_no_false_positives(self, arch):
        outcome = run_clean_scenario(arch, seed=1985)
        assert outcome.ok, outcome.violations
        assert outcome.details["checksum_failures"] == 0


class TestCorruptionScenarios:
    @pytest.mark.parametrize("arch", ["wal", "shadow", "command"])
    @pytest.mark.parametrize("target", CORRUPTION_TARGETS)
    def test_detect_repair_verify(self, arch, target):
        outcome = run_corruption_scenario(arch, target, seed=1985)
        assert outcome.ok, outcome.violations
        if not outcome.details["injected"].get("skipped"):
            assert outcome.details["corruptions_injected"] >= 1
            assert outcome.details["detected"] >= 1


class TestFullSweep:
    @pytest.mark.parametrize("arch", ["versions", "redo"])
    def test_report_is_green(self, arch):
        report = run_scrubtest(arch)
        assert report.ok
        targets = [outcome.target for outcome in report.outcomes]
        assert targets[0] == "clean"
        assert targets[-1] == "sim-scrubber"
        for target in CORRUPTION_TARGETS:
            assert target in targets

    def test_report_json_round_trips(self):
        report = run_scrubtest("shadow")
        payload = json.loads(report.to_json())
        assert payload["architecture"] == "shadow"
        assert payload["ok"] is True
        assert len(payload["scenarios"]) == len(report.outcomes)


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        first = run_scrubtest("wal", seed=7).to_json()
        second = run_scrubtest("wal", seed=7).to_json()
        assert first == second

    def test_different_seed_differs(self):
        # The workload script and injection sites are seed-derived, so a
        # different seed must not silently reuse the same scenario.
        baseline = run_scrubtest("overwrite", seed=7).to_json()
        other = run_scrubtest("overwrite", seed=8).to_json()
        assert json.loads(baseline)["seed"] != json.loads(other)["seed"]

    def test_unknown_architecture_raises(self):
        with pytest.raises((KeyError, ValueError)):
            run_scrubtest("no-such-arch")
