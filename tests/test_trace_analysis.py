"""Unit tests for critical-path attribution (repro.trace.analysis)."""

import pytest

from repro.sim.monitor import SampleStat
from repro.trace import (
    Tracer,
    aggregate_breakdown,
    completion_percentiles,
    critical_resource,
    diff_breakdowns,
    phase_breakdown,
    transaction_windows,
)
from repro.trace.names import OTHER_PHASE
from repro.trace.recorder import Span


def span(name, start, end, tid=1, **args):
    s = Span(sid=0, name=name, start=start, seq=0, tid=tid, args=args or None)
    s.end = end
    return s


class TestPhaseBreakdown:
    def test_partitions_window_exactly(self):
        spans = [
            span("qp.exec", 0.0, 4.0),
            span("io.data.read", 3.0, 8.0),
            span("lock.wait", 8.0, 9.0),
        ]
        out = phase_breakdown(spans, (0.0, 10.0))
        assert out == {
            "qp.exec": 4.0,  # wins its whole extent (highest priority)
            "io.data.read": 4.0,  # only the part qp.exec does not cover
            "lock.wait": 1.0,
            OTHER_PHASE: 1.0,  # [9, 10): nothing active
        }
        assert sum(out.values()) == pytest.approx(10.0)

    def test_higher_priority_wins_overlap(self):
        spans = [span("lock.wait", 0.0, 10.0), span("qp.exec", 2.0, 6.0)]
        out = phase_breakdown(spans, (0.0, 10.0))
        assert out == {"qp.exec": 4.0, "lock.wait": 6.0}

    def test_spans_clipped_to_window(self):
        spans = [span("qp.exec", -5.0, 3.0), span("writeback", 8.0, 20.0)]
        out = phase_breakdown(spans, (0.0, 10.0))
        assert out == {"qp.exec": 3.0, OTHER_PHASE: 5.0, "writeback": 2.0}

    def test_unprioritised_spans_ignored(self):
        spans = [span("txn", 0.0, 10.0)]  # root container: never claims time
        assert phase_breakdown(spans, (0.0, 10.0)) == {OTHER_PHASE: 10.0}

    def test_empty_window(self):
        assert phase_breakdown([], (5.0, 5.0)) == {}


class Clock:
    def __init__(self):
        self.now = 0.0


def traced_pair():
    """Two committed transactions with known windows and phases."""
    tracer = Tracer(env=Clock())
    for tid, (w0, w1), exec_ms in ((1, (0.0, 10.0), 6.0), (2, (0.0, 20.0), 4.0)):
        tracer.env.now = w0
        root = tracer.begin("txn", tid=tid)
        work = tracer.begin("qp.exec", parent=root)
        tracer.env.now = w0 + exec_ms
        tracer.end(work)
        tracer.env.now = w1
        tracer.end(root, status="committed", window_start=w0, window_end=w1)
    return tracer


class TestAggregate:
    def test_windows_from_committed_txn_spans(self):
        assert transaction_windows(traced_pair()) == {1: (0.0, 10.0), 2: (0.0, 20.0)}

    def test_aborted_attempts_carry_no_window(self):
        tracer = Tracer(env=Clock())
        root = tracer.begin("txn", tid=1)
        tracer.end(root, status="aborted")
        assert transaction_windows(tracer) == {}

    def test_mean_breakdown_sums_to_mean_completion(self):
        out = aggregate_breakdown(traced_pair())
        assert out == {"qp.exec": 5.0, OTHER_PHASE: 10.0}
        assert sum(out.values()) == pytest.approx(15.0)  # mean of 10 and 20

    def test_critical_resource_excludes_other(self):
        assert critical_resource({"qp.exec": 5.0, OTHER_PHASE: 10.0}) == "qp.exec"
        assert critical_resource({OTHER_PHASE: 10.0}) is None


class TestDiff:
    def test_deltas_sum_to_the_gap(self):
        a = {"qp.exec": 5.0, "lock.wait": 2.0}
        b = {"qp.exec": 5.0, "wal.wait": 6.0}
        rows = diff_breakdowns(a, b)
        assert sum(delta for _, _, _, delta in rows) == pytest.approx(
            sum(b.values()) - sum(a.values())
        )

    def test_sorted_by_descending_magnitude(self):
        rows = diff_breakdowns({"a": 0.0, "b": 9.0}, {"a": 5.0, "b": 8.0})
        assert [r[0] for r in rows] == ["a", "b"]


class TestPercentiles:
    def test_matches_sample_stat_definition(self):
        tracer = traced_pair()
        stat = SampleStat("completion", keep=True)
        for _, (w0, w1) in sorted(transaction_windows(tracer).items()):
            stat.add(w1 - w0)
        out = completion_percentiles(tracer)
        assert set(out) == {"p50", "p95", "p99"}
        for q in (50.0, 95.0, 99.0):
            assert out[f"p{q:g}"] == pytest.approx(stat.percentile(q))

    def test_empty_trace_yields_zeros(self):
        assert completion_percentiles(Tracer(env=Clock())) == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
