"""Tests for the sweep utilities and the sensitivities they expose."""

import pytest

from repro.experiments import CONFIGURATIONS, ExperimentSettings
from repro.experiments.sweeps import sweep_machine, sweep_workload

SETTINGS = ExperimentSettings(n_transactions=8)


class TestSweepMechanics:
    def test_one_row_per_value(self):
        rows = sweep_machine(
            CONFIGURATIONS["conventional-random"],
            field="mpl",
            values=(2, 3),
            settings=SETTINGS,
        )
        assert [row["value"] for row in rows] == [2, 3]
        for row in rows:
            assert row["exec_ms_per_page"] > 0

    def test_unknown_field_raises(self):
        with pytest.raises(TypeError):
            sweep_machine(
                CONFIGURATIONS["conventional-random"],
                field="not_a_field",
                values=(1,),
                settings=SETTINGS,
            )

    def test_workload_sweep(self):
        rows = sweep_workload(
            CONFIGURATIONS["conventional-random"],
            field="write_fraction",
            values=(0.0, 0.4),
            settings=SETTINGS,
        )
        assert len(rows) == 2


class TestSensitivities:
    def test_cache_frames_matter_for_parallel_sequential(self):
        """The paper's anticipatory-reading argument: parallel-access disks
        need free frames to batch big reads; starving the cache hurts."""
        rows = sweep_machine(
            CONFIGURATIONS["parallel-sequential"],
            field="cache_frames",
            values=(40, 100),
            settings=SETTINGS,
        )
        starved, ample = rows[0], rows[1]
        assert starved["exec_ms_per_page"] > 1.2 * ample["exec_ms_per_page"]

    def test_cache_frames_do_not_matter_for_conventional_random(self):
        """Random loads on conventional disks are seek-bound; frames beyond
        the working set buy nothing."""
        rows = sweep_machine(
            CONFIGURATIONS["conventional-random"],
            field="cache_frames",
            values=(40, 150),
            settings=SETTINGS,
        )
        a, b = rows[0]["exec_ms_per_page"], rows[1]["exec_ms_per_page"]
        assert abs(a - b) / max(a, b) < 0.10

    def test_more_writes_cost_more(self):
        rows = sweep_workload(
            CONFIGURATIONS["conventional-random"],
            field="write_fraction",
            values=(0.0, 0.5),
            settings=SETTINGS,
        )
        # Completion time grows with the write set (more write-backs),
        # even though exec/page normalizes by operations.
        assert rows[1]["completion_ms"] > rows[0]["completion_ms"]

    def test_mpl_stretches_completion_not_throughput(self):
        """With a 32-deep read-ahead window, even one transaction keeps
        both disks busy: raising the multiprogramming level leaves
        machine throughput flat and only stretches per-transaction
        completion times (the queueing view of the paper's metrics)."""
        rows = sweep_machine(
            CONFIGURATIONS["conventional-random"],
            field="mpl",
            values=(1, 4),
            settings=SETTINGS,
        )
        solo, crowded = rows[0], rows[1]
        a, b = solo["exec_ms_per_page"], crowded["exec_ms_per_page"]
        assert abs(a - b) / max(a, b) < 0.05
        assert crowded["completion_ms"] > 1.5 * solo["completion_ms"]
