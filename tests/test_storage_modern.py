"""The modern recovery managers: command logging and redo-only WAL.

Design-specific behaviour beyond the shared contract tests — the
adaptive command/physical record switch and dependency-wave replay of
:class:`~repro.storage.modern.CommandLoggingManager`, and the no-steal
write gate, early lock release, and single-pass zero-undo restart of
:class:`~repro.storage.modern.RedoOnlyWalManager`.  The trace spans the
managers record are part of the contract here: the zero-undo claim is
asserted as "recovery recorded redo work and *no* undo span", not just
as an implementation detail.
"""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec, InjectedCrash
from repro.faults.injector import FaultInjector
from repro.storage.modern import (
    CommandLoggingManager,
    RedoOnlyWalManager,
    build_waves,
    wave_stats,
)
from repro.trace import Tracer


def _commit_value(manager, page, value):
    tid = manager.begin()
    manager.write(tid, page, value)
    manager.commit(tid)
    return tid


class TestNoStealGate:
    @pytest.mark.parametrize("factory", [CommandLoggingManager, RedoOnlyWalManager])
    def test_uncommitted_page_never_reaches_disk(self, factory):
        manager = factory()
        tid = manager.begin()
        manager.write(tid, 3, b"dirty")
        manager.flush_page(3)
        assert manager.writes_gated == 1
        assert manager.stable.read_page(3) == b""
        manager.commit(tid)
        # Committed pages pass the gate.
        manager.flush_page(3)
        assert manager.stable.read_page(3) == b"dirty"

    @pytest.mark.parametrize("factory", [CommandLoggingManager, RedoOnlyWalManager])
    def test_loser_vanishes_without_undo(self, factory):
        manager = factory()
        _commit_value(manager, 0, b"keep")
        loser = manager.begin()
        manager.write(loser, 0, b"toss")
        manager.flush_page(0)  # gated: the stolen write never lands
        manager.crash()
        manager.recover()
        assert manager.read_committed(0) == b"keep"


class TestEarlyLockRelease:
    def test_locks_released_at_commit_record_append(self):
        manager = RedoOnlyWalManager()
        tid = manager.begin()
        manager.write(tid, 1, b"a")
        manager.write(tid, 2, b"b")
        seen = {}

        def probe(hook):
            if hook == "redo.commit.elr":
                seen["locks"] = dict(manager._locks)

        manager.set_fault_callback(probe)
        manager.commit(tid)
        manager.set_fault_callback(None)
        # At the ELR fault point — before the force — the locks are gone.
        assert seen["locks"] == {}
        assert manager.early_lock_releases == 2  # one per released page

    def test_elr_marked_with_lock_release_instant(self):
        manager = RedoOnlyWalManager(tracer=Tracer())
        tid = manager.begin()
        manager.write(tid, 1, b"a")
        manager.commit(tid)
        marks = [s for s in manager.tracer.instants if s.name == "lock.release"]
        assert len(marks) == 1
        assert marks[0].args["pages"] == 1

    def test_crash_inside_elr_window_is_in_flight(self):
        """A crash after ELR but before the force loses the commit —
        legal, because the commit record was never durable."""
        manager = RedoOnlyWalManager()
        _commit_value(manager, 0, b"base")
        tid = manager.begin()
        manager.write(tid, 0, b"new")
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="redo.commit.elr"))
        )
        manager.set_fault_callback(injector.reached)
        with pytest.raises(InjectedCrash):
            manager.commit(tid)
        manager.set_fault_callback(None)
        manager.crash()
        manager.recover()
        assert manager.read_committed(0) == b"base"


class TestRedoOnlyRestart:
    def test_recovery_records_redo_and_never_undo(self):
        manager = RedoOnlyWalManager(tracer=Tracer())
        for page in range(4):
            _commit_value(manager, page, bytes([page]) * 4)
        loser = manager.begin()
        manager.write(loser, 0, b"loser")
        manager.crash()
        manager.recover()
        tracer = manager.tracer
        assert len(tracer.named("log.analysis")) == 1
        assert len(tracer.named("recovery.redo")) == 1
        assert tracer.named("recovery.undo") == []
        assert manager.last_redo_pages == 4
        for page in range(4):
            assert manager.read_committed(page) == bytes([page]) * 4

    def test_checkpoint_drops_reflected_and_aborted_records(self):
        manager = RedoOnlyWalManager()
        _commit_value(manager, 0, b"done")
        aborted = manager.begin()
        manager.write(aborted, 1, b"gone")
        manager.abort(aborted)
        live = manager.begin()
        manager.write(live, 2, b"maybe")
        before = manager.log_lengths()["redolog"]
        manager.checkpoint(flush=True)
        after = manager.log_lengths()["redolog"]
        # Reflected commit + aborted records dropped; the live
        # transaction's record survives (it may yet commit).
        assert after < before
        manager.commit(live)
        manager.crash()
        manager.recover()
        assert manager.read_committed(0) == b"done"
        assert manager.read_committed(1) == b""
        assert manager.read_committed(2) == b"maybe"


class TestAdaptiveCommandLogging:
    def test_small_transactions_log_commands(self):
        manager = CommandLoggingManager(physical_threshold=4)
        tid = manager.begin()
        manager.write(tid, 0, b"x")
        manager.write(tid, 1, b"y")
        manager.commit(tid)
        assert manager.command_records == 2
        assert manager.physical_records == 0

    def test_high_fanin_falls_back_to_physical(self):
        manager = CommandLoggingManager(physical_threshold=3)
        tid = manager.begin()
        manager.write(tid, 0, b"a")
        manager.write(tid, 1, b"b")
        assert manager.command_records == 2
        manager.write(tid, 2, b"c")  # crosses the fan-in threshold
        manager.write(tid, 3, b"d")  # sticky: stays physical
        manager.commit(tid)
        assert manager.physical_records == 2

    def test_mixed_records_recover_identically(self):
        manager = CommandLoggingManager(physical_threshold=2)
        small = manager.begin()
        manager.write(small, 0, b"cmd")
        manager.commit(small)
        wide = manager.begin()
        for page in range(1, 5):
            manager.write(wide, page, b"phys")
        manager.commit(wide)
        manager.crash()
        manager.recover()
        assert manager.read_committed(0) == b"cmd"
        for page in range(1, 5):
            assert manager.read_committed(page) == b"phys"


class TestDependencyWaves:
    def test_independent_transactions_share_a_wave(self):
        waves = build_waves([1, 2, 3], {0: [(0, 1)], 1: [(1, 2)], 2: [(2, 3)]})
        assert waves == [[1, 2, 3]]

    def test_page_chain_orders_waves(self):
        # txn 2 overwrote txn 1's page, txn 3 overwrote txn 2's.
        chains = {0: [(0, 1), (1, 2)], 1: [(2, 2), (3, 3)]}
        waves = build_waves([1, 2, 3], chains)
        assert waves == [[1], [2], [3]]
        assert wave_stats(waves) == {
            "waves": 3,
            "transactions": 3,
            "max_wave_width": 1,
        }

    def test_replay_stats_exposed_after_recovery(self):
        manager = CommandLoggingManager(tracer=Tracer())
        _commit_value(manager, 0, b"first")
        _commit_value(manager, 0, b"second")  # depends on the first
        _commit_value(manager, 5, b"free")  # independent
        manager.crash()
        manager.recover()
        stats = manager.last_replay
        assert stats["transactions"] == 3
        assert stats["waves"] == 2
        assert stats["max_wave_width"] == 2
        waves = manager.tracer.named("replay.wave")
        assert len(waves) == stats["waves"]
        assert manager.tracer.named("recovery.undo") == []
        assert manager.read_committed(0) == b"second"
        assert manager.read_committed(5) == b"free"

    def test_recovery_is_idempotent_across_waves(self):
        manager = CommandLoggingManager()
        for page in range(3):
            _commit_value(manager, page, b"v1")
            _commit_value(manager, page, b"v2")
        manager.crash()
        manager.recover()
        manager.crash()
        manager.recover()
        for page in range(3):
            assert manager.read_committed(page) == b"v2"


class TestCommandCheckpoint:
    def test_checkpoint_bounds_replay(self):
        manager = CommandLoggingManager()
        for page in range(4):
            _commit_value(manager, page, b"old")
        manager.checkpoint(flush=True)
        assert sum(manager.log_lengths().values()) == 0
        _commit_value(manager, 0, b"new")
        manager.crash()
        manager.recover()
        # Only the post-checkpoint transaction replays.
        assert manager.last_replay["transactions"] == 1
        assert manager.read_committed(0) == b"new"
        assert manager.read_committed(3) == b"old"
