"""Unit tests for named random streams."""

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_deterministic_across_factories(self):
        a = RandomStreams(42).stream("disk").random()
        b = RandomStreams(42).stream("disk").random()
        assert a == b

    def test_names_are_independent(self):
        streams = RandomStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_seed_changes_streams(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_getitem_alias(self):
        streams = RandomStreams(3)
        assert streams["q"] is streams.stream("q")

    def test_fork_is_independent_of_parent(self):
        parent = RandomStreams(9)
        child = parent.fork("worker")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RandomStreams(9).fork("w").stream("x").random()
        b = RandomStreams(9).fork("w").stream("x").random()
        assert a == b

    def test_common_random_numbers_unaffected_by_other_streams(self):
        """Drawing from one stream must not perturb another (CRN property)."""
        s1 = RandomStreams(7)
        _ = [s1.stream("noise").random() for _ in range(100)]
        value_with_noise = s1.stream("workload").random()
        s2 = RandomStreams(7)
        value_without_noise = s2.stream("workload").random()
        assert value_with_noise == value_without_noise
