"""Tests for workload trace files."""

import io
import random

import pytest

from repro.workload import WorkloadConfig, generate_transactions
from repro.workload.tracefile import load_trace, save_trace


def sample_load(sequential=False, n=10):
    return generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=60, sequential=sequential),
        5_000,
        random.Random(4),
    )


class TestTraceRoundTrip:
    def test_round_trip_random(self):
        original = sample_load()
        buffer = io.StringIO()
        save_trace(original, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert len(loaded) == len(original)
        for before, after in zip(original, loaded):
            assert after.tid == before.tid
            assert after.read_pages == before.read_pages
            assert after.write_pages == before.write_pages
            assert after.sequential == before.sequential

    def test_round_trip_sequential_flag(self):
        original = sample_load(sequential=True)
        buffer = io.StringIO()
        save_trace(original, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert all(t.sequential for t in loaded)

    def test_file_path_round_trip(self, tmp_path):
        original = sample_load(n=3)
        path = tmp_path / "load.trace"
        save_trace(original, str(path))
        loaded = load_trace(str(path))
        assert [t.read_pages for t in loaded] == [t.read_pages for t in original]

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\n1|r|5,6,7|6\n"
        loaded = load_trace(io.StringIO(text))
        assert len(loaded) == 1
        assert loaded[0].read_pages == (5, 6, 7)
        assert loaded[0].write_pages == frozenset({6})

    def test_loaded_trace_runs_on_the_machine(self):
        from repro import DatabaseMachine, MachineConfig

        buffer = io.StringIO()
        save_trace(sample_load(n=3), buffer)
        buffer.seek(0)
        transactions = load_trace(buffer)
        result = DatabaseMachine(MachineConfig(), None).run(transactions)
        assert result.n_transactions == 3


class TestTraceValidation:
    def test_wrong_field_count(self):
        with pytest.raises(ValueError, match="expected 4 fields"):
            load_trace(io.StringIO("1|r|2,3\n"))

    def test_unknown_flags(self):
        with pytest.raises(ValueError, match="unknown flags"):
            load_trace(io.StringIO("1|x|2,3|3\n"))

    def test_non_numeric_pages(self):
        with pytest.raises(ValueError, match="line 1"):
            load_trace(io.StringIO("1|r|2,three|2\n"))

    def test_empty_read_set(self):
        with pytest.raises(ValueError, match="reads no pages"):
            load_trace(io.StringIO("1|r||"))

    def test_write_not_subset_rejected_by_transaction(self):
        with pytest.raises(ValueError):
            load_trace(io.StringIO("1|r|2,3|9\n"))
