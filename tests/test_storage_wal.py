"""Unit tests for the distributed-WAL recovery manager."""

import pytest

from repro.storage import DistributedWalManager, LockConflict, UnknownTransaction


@pytest.fixture
def wal():
    return DistributedWalManager(n_logs=3)


class TestBasicTransactions:
    def test_read_your_writes(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        assert wal.read(tid, 1) == b"x"

    def test_committed_visible_after_commit(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        wal.commit(tid)
        assert wal.read_committed(1) == b"x"

    def test_abort_restores_previous_value(self, wal):
        t1 = wal.begin()
        wal.write(t1, 1, b"old")
        wal.commit(t1)
        t2 = wal.begin()
        wal.write(t2, 1, b"new")
        wal.abort(t2)
        assert wal.read_committed(1) == b"old"

    def test_unknown_tid_rejected(self, wal):
        with pytest.raises(UnknownTransaction):
            wal.write(99, 1, b"x")

    def test_lock_conflict_between_transactions(self, wal):
        t1, t2 = wal.begin(), wal.begin()
        wal.write(t1, 1, b"a")
        with pytest.raises(LockConflict):
            wal.write(t2, 1, b"b")

    def test_locks_released_at_commit(self, wal):
        t1 = wal.begin()
        wal.write(t1, 1, b"a")
        wal.commit(t1)
        t2 = wal.begin()
        wal.write(t2, 1, b"b")  # no conflict

    def test_non_bytes_rejected(self, wal):
        tid = wal.begin()
        with pytest.raises(TypeError):
            wal.write(tid, 1, "not-bytes")


class TestCrashRecovery:
    def test_committed_survives_unflushed(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"durable")
        wal.commit(tid)
        assert wal.stable.page_seq(1) == 0  # never flushed (no-force)
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"durable"

    def test_uncommitted_unflushed_vanishes(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"ghost")
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b""

    def test_stolen_page_rolled_back(self, wal):
        t1 = wal.begin()
        wal.write(t1, 1, b"committed")
        wal.commit(t1)
        t2 = wal.begin()
        wal.write(t2, 1, b"stolen")
        wal.flush_page(1)  # steal: uncommitted data reaches disk
        assert wal.stable.read_page(1) == b"stolen"
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"committed"

    def test_multi_step_rollback_through_before_images(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"v1")
        wal.write(tid, 1, b"v2")
        wal.write(tid, 1, b"v3")
        wal.flush_page(1)
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b""

    def test_commit_after_recovery_of_aborted_history(self, wal):
        t1 = wal.begin()
        wal.write(t1, 1, b"one")
        wal.commit(t1)
        t2 = wal.begin()
        wal.write(t2, 1, b"loser")
        wal.crash()
        wal.recover()
        t3 = wal.begin()
        wal.write(t3, 1, b"winner")
        wal.commit(t3)
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"winner"

    def test_unforced_log_tail_lost(self, wal):
        """A write whose log record was never forced cannot survive."""
        tid = wal.begin()
        wal.write(tid, 1, b"buffered")
        # no commit, no flush: records sit in volatile log buffers
        assert sum(wal.log_lengths().values()) == 0
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b""

    def test_commit_forces_involved_logs(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"a")
        wal.write(tid, 2, b"b")
        wal.commit(tid)
        assert sum(wal.log_lengths().values()) >= 3  # 2 updates + commit

    def test_recovery_is_idempotent(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        wal.commit(tid)
        wal.crash()
        wal.recover()
        wal.recover()
        assert wal.read_committed(1) == b"x"

    def test_interleaved_transactions_partial_commit(self, wal):
        t1, t2 = wal.begin(), wal.begin()
        wal.write(t1, 1, b"one")
        wal.write(t2, 2, b"two")
        wal.commit(t1)
        wal.crash()  # t2 active at crash
        wal.recover()
        assert wal.read_committed(1) == b"one"
        assert wal.read_committed(2) == b""


class TestDistribution:
    def test_records_spread_across_logs(self):
        wal = DistributedWalManager(n_logs=4)
        tid = wal.begin()
        for page in range(8):
            wal.write(tid, page, b"x")
        wal.commit(tid)
        lengths = wal.log_lengths()
        # Round-robin: two update records in each of the four logs.
        assert all(count >= 2 for count in lengths.values())

    def test_recovery_never_merges_logs(self):
        """Witness the claim: recovery scans logs independently and only
        groups records per page; a single-log and a 5-log manager recover
        to identical states from identical histories."""
        def history(manager):
            t1 = manager.begin()
            for page in range(6):
                manager.write(t1, page, b"A%d" % page)
            manager.commit(t1)
            t2 = manager.begin()
            manager.write(t2, 0, b"uncommitted")
            manager.flush_page(0)
            manager.crash()
            manager.recover()
            return {page: manager.read_committed(page) for page in range(6)}

        assert history(DistributedWalManager(n_logs=1)) == history(
            DistributedWalManager(n_logs=5)
        )

    def test_random_selection_policy(self):
        wal = DistributedWalManager(n_logs=3, selection_seed=42)
        tid = wal.begin()
        for page in range(30):
            wal.write(tid, page, b"x")
        wal.commit(tid)
        wal.crash()
        wal.recover()
        assert wal.read_committed(29) == b"x"


class TestCheckpoint:
    def test_checkpoint_truncates_reflected_records(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        wal.commit(tid)
        wal.flush_all()
        stats = wal.checkpoint()
        assert sum(stats.values()) == 0  # everything reflected

    def test_checkpoint_keeps_unreflected_committed(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        wal.commit(tid)  # no flush: record still needed for redo
        wal.checkpoint()
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"x"

    def test_checkpoint_keeps_active_transactions(self, wal):
        """Fuzzy: checkpoint with a transaction in flight (no quiescing)."""
        t1 = wal.begin()
        wal.write(t1, 1, b"committed")
        wal.commit(t1)
        t2 = wal.begin()
        wal.write(t2, 2, b"active")
        wal.flush_all()  # steals page 2
        wal.checkpoint()
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"committed"
        assert wal.read_committed(2) == b""  # t2 undone despite checkpoint

    def test_checkpoint_with_flush_maximizes_truncation(self, wal):
        for _ in range(5):
            tid = wal.begin()
            wal.write(tid, 1, b"x")
            wal.commit(tid)
        stats = wal.checkpoint(flush=True)
        assert sum(stats.values()) == 0

    def test_commit_after_checkpoint_survives(self, wal):
        t1 = wal.begin()
        wal.write(t1, 1, b"pre")
        wal.commit(t1)
        wal.checkpoint(flush=True)
        t2 = wal.begin()
        wal.write(t2, 1, b"post")
        wal.commit(t2)
        wal.crash()
        wal.recover()
        assert wal.read_committed(1) == b"post"


class TestBufferManagement:
    def test_flush_respects_wal_rule(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        wal.flush_page(1)
        # Flushing forced the log first: the record must be stable.
        assert sum(wal.log_lengths().values()) >= 1

    def test_dirty_pages_listed(self, wal):
        tid = wal.begin()
        wal.write(tid, 1, b"x")
        assert wal.dirty_pages == [1]
        wal.flush_page(1)
        assert wal.dirty_pages == []

    def test_flush_unknown_page_is_noop(self, wal):
        wal.flush_page(999)
