"""Unit tests for the simulation-side background scrubber patrol."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardware.params import IBM_3350
from repro.machine.config import MachineConfig
from repro.machine.machine import DatabaseMachine
from repro.registry import survive_factory
from repro.resilience import Scrubber

#: A tiny drive keeps one patrol pass within a few simulated seconds.
TINY = IBM_3350.with_overrides(cylinders=6)


def make_machine(faults=None, **over):
    overrides = {
        "seed": 11,
        "parallel_data_disks": True,
        "mirrored_data_disks": True,
        "scrub_enabled": True,
        "scrub_io_share": 1.0,
        "scrub_interval_ms": 5.0,
        "disk": TINY,
        "db_pages": 500,
        "reserved_cylinders": 1,
    }
    overrides.update(over)
    config = MachineConfig().with_overrides(**overrides)
    return DatabaseMachine(config, survive_factory("wal")(), faults=faults)


def seed_rot(machine, side_index=0, sectors=(3, 40, 200)):
    side = machine.data_disks[0].sides[side_index]
    for linear in sectors:
        side.corrupt_sectors[linear] = machine.env.now
        side.rotted_sectors.increment()
    return side


class TestPatrol:
    def test_attaches_to_machine(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        assert machine.scrubber is scrubber

    def test_idle_patrol_completes_passes(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        machine.env.run(until=5_000.0)
        assert scrubber.passes.count >= 1
        assert scrubber.sectors_read.count > 0

    def test_clean_disks_no_detections(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        machine.env.run(until=5_000.0)
        assert scrubber.sectors_detected.count == 0
        assert scrubber.sectors_repaired.count == 0
        assert scrubber.detections == []

    def test_detects_and_repairs_seeded_rot(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        side = seed_rot(machine)
        machine.env.run(until=5_000.0)
        assert scrubber.sectors_detected.count == 3
        assert scrubber.sectors_repaired.count == 3
        assert side.corrupt_sectors == {}  # the repair writes healed them
        assert scrubber.escalations.count == 0  # the twin was clean

    def test_detection_records_carry_latency(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        seed_rot(machine, sectors=(7,))
        machine.env.run(until=5_000.0)
        (record,) = scrubber.detections
        assert record["sector"] == 7
        assert record["latency_ms"] >= 0.0
        assert scrubber.detection_latencies() == [record["latency_ms"]]

    def test_both_sides_rotted_escalates(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        seed_rot(machine, side_index=0, sectors=(9,))
        seed_rot(machine, side_index=1, sectors=(9,))
        machine.env.run(until=5_000.0)
        # No clean twin for sector 9: repaired from the archive medium.
        assert scrubber.escalations.count >= 1
        assert scrubber.sectors_repaired.count == 2
        for side in machine.data_disks[0].sides:
            assert side.corrupt_sectors == {}

    def test_counters_shape(self):
        machine = make_machine()
        scrubber = Scrubber(machine)
        machine.env.run(until=2_000.0)
        assert sorted(scrubber.extra_counters()) == [
            "scrub_detections",
            "scrub_escalations",
            "scrub_passes",
            "scrub_repairs",
            "scrub_sectors_read",
        ]

    def test_io_share_throttles_patrol(self):
        rates = {}
        for share in (1.0, 0.25):
            machine = make_machine(scrub_io_share=share, scrub_interval_ms=0.0)
            scrubber = Scrubber(machine)
            machine.env.run(until=4_000.0)
            rates[share] = scrubber.sectors_read.count
        assert rates[0.25] < rates[1.0]

    def test_deterministic_patrol(self):
        counts = []
        for _ in range(2):
            machine = make_machine()
            scrubber = Scrubber(machine)
            seed_rot(machine)
            machine.env.run(until=5_000.0)
            counts.append(
                (scrubber.extra_counters(), scrubber.detection_latencies())
            )
        assert counts[0] == counts[1]


class TestMachineIntegration:
    def test_machine_folds_scrub_counters(self):
        from repro.sim.rng import RandomStreams
        from repro.workload.generator import WorkloadConfig, generate_transactions

        machine = make_machine()
        Scrubber(machine)
        transactions = generate_transactions(
            WorkloadConfig(n_transactions=2, max_pages=10),
            machine.config.db_pages,
            RandomStreams(1).stream("workload"),
        )
        result = machine.run(transactions)
        assert "scrub_passes" in result.counters

    def test_rot_injection_is_deterministic(self):
        totals = []
        for _ in range(2):
            injector = FaultInjector(
                FaultPlan.of(
                    FaultSpec(FaultKind.BIT_ROT, probability=0.1), seed=3
                )
            )
            machine = make_machine(faults=injector)
            injector.arm(machine)
            Scrubber(machine)
            machine.env.run(until=2_000.0)
            totals.append(
                sum(
                    side.rotted_sectors.count
                    for disk in machine.data_disks
                    for side in disk.sides
                )
            )
        assert totals[0] == totals[1]
