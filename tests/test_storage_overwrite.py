"""Unit tests for the functional overwriting managers (no-undo / no-redo)."""

import pytest

from repro.storage import OverwriteVariant, OverwritingManager


@pytest.fixture(params=[OverwriteVariant.NO_UNDO, OverwriteVariant.NO_REDO],
                ids=["no-undo", "no-redo"])
def manager(request):
    return OverwritingManager(request.param)


class TestCommonBehaviour:
    def test_read_your_writes(self, manager):
        tid = manager.begin()
        manager.write(tid, 1, b"x")
        assert manager.read(tid, 1) == b"x"

    def test_commit_durable(self, manager):
        tid = manager.begin()
        manager.write(tid, 1, b"x")
        manager.commit(tid)
        assert manager.read_committed(1) == b"x"

    def test_abort_restores(self, manager):
        t1 = manager.begin()
        manager.write(t1, 1, b"old")
        manager.commit(t1)
        t2 = manager.begin()
        manager.write(t2, 1, b"new")
        manager.abort(t2)
        assert manager.read_committed(1) == b"old"

    def test_crash_mid_transaction(self, manager):
        t1 = manager.begin()
        manager.write(t1, 1, b"keep")
        manager.commit(t1)
        t2 = manager.begin()
        manager.write(t2, 1, b"lose")
        manager.crash()
        manager.recover()
        assert manager.read_committed(1) == b"keep"

    def test_crash_after_commit(self, manager):
        tid = manager.begin()
        manager.write(tid, 1, b"safe")
        manager.commit(tid)
        manager.crash()
        manager.recover()
        assert manager.read_committed(1) == b"safe"

    def test_scratch_cleaned_after_commit_cycle(self, manager):
        tid = manager.begin()
        manager.write(tid, 1, b"x")
        manager.commit(tid)
        manager.crash()
        manager.recover()
        assert manager.scratch_length() == 0

    def test_read_only_commit(self, manager):
        tid = manager.begin()
        manager.read(tid, 1)
        manager.commit(tid)
        assert manager.read_committed(1) == b""


class TestNoUndoSpecifics:
    def test_home_untouched_until_commit(self):
        manager = OverwritingManager(OverwriteVariant.NO_UNDO)
        t1 = manager.begin()
        manager.write(t1, 1, b"old")
        manager.commit(t1)
        t2 = manager.begin()
        manager.write(t2, 1, b"pending")
        # The home page still holds the shadow.
        assert manager.stable.read_page(1) == b"old"

    def test_crash_between_commit_point_and_overwrite_redoes(self):
        """Simulate dying right after the committed-list append: recovery
        must finish the overwrite from the scratch ring."""
        manager = OverwritingManager(OverwriteVariant.NO_UNDO)
        tid = manager.begin()
        manager.write(tid, 1, b"redo-me")
        # Manually reproduce the first half of commit: the commit point.
        manager.stable.append("committed_txns", tid)
        manager.crash()
        manager.recover()
        assert manager.read_committed(1) == b"redo-me"

    def test_last_write_of_page_wins(self):
        manager = OverwritingManager(OverwriteVariant.NO_UNDO)
        tid = manager.begin()
        manager.write(tid, 1, b"first")
        manager.write(tid, 1, b"second")
        manager.commit(tid)
        manager.crash()
        manager.recover()
        assert manager.read_committed(1) == b"second"


class TestNoRedoSpecifics:
    def test_home_overwritten_immediately(self):
        manager = OverwritingManager(OverwriteVariant.NO_REDO)
        tid = manager.begin()
        manager.write(tid, 1, b"eager")
        assert manager.stable.read_page(1) == b"eager"

    def test_read_committed_sees_shadow_while_active(self):
        manager = OverwritingManager(OverwriteVariant.NO_REDO)
        t1 = manager.begin()
        manager.write(t1, 1, b"old")
        manager.commit(t1)
        t2 = manager.begin()
        manager.write(t2, 1, b"dirty")
        assert manager.read_committed(1) == b"old"

    def test_shadow_saved_once_per_page(self):
        manager = OverwritingManager(OverwriteVariant.NO_REDO)
        tid = manager.begin()
        manager.write(tid, 1, b"a")
        manager.write(tid, 1, b"b")
        assert manager.scratch_length() == 1  # one shadow record only

    def test_crash_restores_shadow_from_scratch(self):
        manager = OverwritingManager(OverwriteVariant.NO_REDO)
        t1 = manager.begin()
        manager.write(t1, 1, b"original")
        manager.commit(t1)
        t2 = manager.begin()
        manager.write(t2, 1, b"overwrote-home")
        assert manager.stable.read_page(1) == b"overwrote-home"
        manager.crash()
        manager.recover()
        assert manager.read_committed(1) == b"original"
        assert manager.stable.read_page(1) == b"original"
