"""Parallel fan-out (`--jobs`) must be invisible in the output.

Every experiment cell is independently seeded, so fanning cells out over
worker processes may only change wall-clock time — the report text and
the sweep statistics must be byte-identical to the serial path.  Sizes
here are kept tiny: the point is path equivalence, not statistics.
"""

from repro.analysis.checkpoints import checkpoint_interval_sweep
from repro.experiments.report import generate_report
from repro.experiments.runner import ExperimentSettings, map_jobs

SMALL = ExperimentSettings(n_transactions=6)


def _square(x):
    return x * x


class TestMapJobs:
    def test_serial_path(self):
        assert map_jobs(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        items = list(range(8))
        assert map_jobs(_square, items, jobs=3) == [x * x for x in items]

    def test_single_item_stays_serial(self):
        assert map_jobs(_square, [5], jobs=8) == [25]

    def test_empty(self):
        assert map_jobs(_square, [], jobs=4) == []


class TestReportJobs:
    def test_report_byte_identical_across_jobs(self):
        serial = generate_report(settings=SMALL, tables=[1, 5], jobs=1)
        parallel = generate_report(settings=SMALL, tables=[1, 5], jobs=2)
        assert parallel == serial


class TestSweepJobs:
    def test_sweep_identical_across_jobs(self):
        kwargs = dict(
            seed=7,
            intervals=[None, 2],
            archs=["wal"],
            n_transactions=5,
            n_pages=24,
        )
        serial = checkpoint_interval_sweep(jobs=1, **kwargs)
        parallel = checkpoint_interval_sweep(jobs=2, **kwargs)
        assert parallel == serial
