"""Property-based tests: every recovery manager obeys the same contract.

A hypothesis state machine drives each manager through arbitrary
interleavings of begin / write / commit / abort / crash+recover (and, for
the WAL manager, page steals), alongside a trivial reference model that
remembers the last committed value of every page.  Invariants:

* **durability** — committed values survive any suffix of operations,
  including crashes;
* **atomicity** — uncommitted or aborted writes never become visible;
* page-level lock discipline is respected by construction (the machine
  only writes pages not held by another active transaction).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.storage import (
    CommandLoggingManager,
    DifferentialFileManager,
    DistributedWalManager,
    OverwriteVariant,
    OverwritingManager,
    RedoOnlyWalManager,
    ShadowPageTableManager,
    VersionSelectionManager,
)

PAGES = st.integers(min_value=0, max_value=7)
VALUES = st.binary(min_size=0, max_size=4)


class RecoveryContract(RuleBasedStateMachine):
    """Shared contract machine; subclasses provide ``make_manager``."""

    def make_manager(self):
        raise NotImplementedError

    def __init__(self):
        super().__init__()
        self.manager = self.make_manager()
        #: The reference model: last committed value per page.
        self.committed = {}
        #: tid -> {page: value} for active transactions.
        self.pending = {}

    # -- helpers ---------------------------------------------------------------
    def _page_free(self, page):
        return all(page not in writes for writes in self.pending.values())

    # -- rules -----------------------------------------------------------------
    @rule()
    def begin(self):
        if len(self.pending) >= 3:
            return
        tid = self.manager.begin()
        self.pending[tid] = {}

    @precondition(lambda self: self.pending)
    @rule(page=PAGES, value=VALUES, pick=st.integers(min_value=0, max_value=10))
    def write(self, page, value, pick):
        tid = sorted(self.pending)[pick % len(self.pending)]
        if not self._page_free(page) and page not in self.pending[tid]:
            return  # respect page-level locking
        self.manager.write(tid, page, value)
        self.pending[tid][page] = value

    @precondition(lambda self: self.pending)
    @rule(pick=st.integers(min_value=0, max_value=10))
    def commit(self, pick):
        tid = sorted(self.pending)[pick % len(self.pending)]
        self.manager.commit(tid)
        self.committed.update(self.pending.pop(tid))

    @precondition(lambda self: self.pending)
    @rule(pick=st.integers(min_value=0, max_value=10))
    def abort(self, pick):
        tid = sorted(self.pending)[pick % len(self.pending)]
        self.manager.abort(tid)
        self.pending.pop(tid)

    @rule()
    def crash_and_recover(self):
        self.manager.crash()
        self.manager.recover()
        self.pending.clear()

    @precondition(lambda self: self.pending)
    @rule(pick=st.integers(min_value=0, max_value=10))
    def read_your_writes(self, pick):
        tid = sorted(self.pending)[pick % len(self.pending)]
        for page, value in self.pending[tid].items():
            assert self.manager.read(tid, page) == value

    # -- invariant -----------------------------------------------------------------
    @invariant()
    def committed_state_matches_model(self):
        for page in range(8):
            expected = self.committed.get(page, b"")
            actual = self.manager.read_committed(page)
            assert actual == expected, (
                f"page {page}: expected {expected!r}, got {actual!r} "
                f"({self.manager.name})"
            )


_SETTINGS = settings(max_examples=40, stateful_step_count=30, deadline=None)


class WalContract(RecoveryContract):
    def make_manager(self):
        return DistributedWalManager(n_logs=3)

    @precondition(lambda self: self.manager.dirty_pages)
    @rule(pick=st.integers(min_value=0, max_value=10))
    def steal_a_page(self, pick):
        """Flush a dirty page mid-transaction (steal) — recovery must cope."""
        dirty = sorted(self.manager.dirty_pages)
        self.manager.flush_page(dirty[pick % len(dirty)])

    @rule()
    def checkpoint(self):
        self.manager.checkpoint()


class WalSingleLogContract(RecoveryContract):
    def make_manager(self):
        return DistributedWalManager(n_logs=1)


class ShadowContract(RecoveryContract):
    def make_manager(self):
        return ShadowPageTableManager()


class NoUndoContract(RecoveryContract):
    def make_manager(self):
        return OverwritingManager(OverwriteVariant.NO_UNDO)


class NoRedoContract(RecoveryContract):
    def make_manager(self):
        return OverwritingManager(OverwriteVariant.NO_REDO)


class VersionsContract(RecoveryContract):
    def make_manager(self):
        return VersionSelectionManager()


class DifferentialContract(RecoveryContract):
    def make_manager(self):
        return DifferentialFileManager()


class CommandLoggingContract(RecoveryContract):
    """Low threshold so both record kinds (cmd and phys) get exercised."""

    def make_manager(self):
        return CommandLoggingManager(physical_threshold=2)

    @precondition(lambda self: self.manager.dirty_pages)
    @rule(pick=st.integers(min_value=0, max_value=10))
    def steal_a_page(self, pick):
        """The no-steal gate makes this a no-op for uncommitted pages."""
        dirty = sorted(self.manager.dirty_pages)
        self.manager.flush_page(dirty[pick % len(dirty)])

    @rule()
    def checkpoint(self):
        self.manager.checkpoint()


class RedoOnlyContract(RecoveryContract):
    def make_manager(self):
        return RedoOnlyWalManager()

    @precondition(lambda self: self.manager.dirty_pages)
    @rule(pick=st.integers(min_value=0, max_value=10))
    def steal_a_page(self, pick):
        """The no-steal gate makes this a no-op for uncommitted pages."""
        dirty = sorted(self.manager.dirty_pages)
        self.manager.flush_page(dirty[pick % len(dirty)])

    @rule()
    def checkpoint(self):
        self.manager.checkpoint()


TestWalContract = WalContract.TestCase
TestWalSingleLogContract = WalSingleLogContract.TestCase
TestShadowContract = ShadowContract.TestCase
TestNoUndoContract = NoUndoContract.TestCase
TestNoRedoContract = NoRedoContract.TestCase
TestVersionsContract = VersionsContract.TestCase
TestDifferentialContract = DifferentialContract.TestCase
TestCommandLoggingContract = CommandLoggingContract.TestCase
TestRedoOnlyContract = RedoOnlyContract.TestCase

for case in (
    TestWalContract,
    TestWalSingleLogContract,
    TestShadowContract,
    TestNoUndoContract,
    TestNoRedoContract,
    TestVersionsContract,
    TestDifferentialContract,
    TestCommandLoggingContract,
    TestRedoOnlyContract,
):
    case.settings = _SETTINGS
