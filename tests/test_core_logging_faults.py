"""Log-processor failure: graceful degradation under parallel logging."""

import random

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture, SelectionPolicy
from repro.core.logging import LogFragment, LogProcessor
from repro.core.logging.selection import (
    NoLiveLogProcessor,
    SelectorState,
    select_log_processor,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.hardware import IBM_3350, ConventionalDisk
from repro.sim import Environment, RandomStreams
from repro.workload import Transaction, TransactionStatus


def txn(tid):
    return Transaction(tid=tid, read_pages=(1,), write_pages=frozenset())


class TestAliveAwareSelection:
    def make(self):
        return SelectorState(), random.Random(0)

    def test_all_alive_matches_unrestricted(self):
        state_a, rng_a = self.make()
        state_b, rng_b = self.make()
        for i in range(9):
            unrestricted = select_log_processor(
                SelectionPolicy.CYCLIC, 3, 0, txn(i), state_a, rng_a
            )
            masked = select_log_processor(
                SelectionPolicy.CYCLIC, 3, 0, txn(i), state_b, rng_b,
                alive=[True, True, True],
            )
            assert unrestricted == masked

    def test_dead_processor_never_selected(self):
        state, rng = self.make()
        picks = {
            select_log_processor(
                SelectionPolicy.CYCLIC, 3, 0, txn(i), state, rng,
                alive=[True, False, True],
            )
            for i in range(12)
        }
        assert picks == {0, 2}

    def test_txn_mod_redistributes_over_survivors(self):
        state, rng = self.make()
        pick = select_log_processor(
            SelectionPolicy.TXN_MOD, 4, 0, txn(5), state, rng,
            alive=[True, False, True, False],
        )
        assert pick == 2  # candidates [0, 2], 5 % 2 == 1

    def test_all_dead_raises(self):
        state, rng = self.make()
        with pytest.raises(NoLiveLogProcessor):
            select_log_processor(
                SelectionPolicy.RANDOM, 2, 0, txn(1), state, rng,
                alive=[False, False],
            )


class TestLogProcessorFailure:
    def make_lp(self, fragments_per_page=3):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, name="log0", rng=random.Random(0))
        return env, LogProcessor(env, 0, disk, fragments_per_page)

    def test_fail_orphans_buffered_fragments(self):
        env, lp = self.make_lp(fragments_per_page=5)
        orphans = []
        lp.on_orphan = orphans.append
        frags = [LogFragment(env, 1, p) for p in range(3)]
        for fragment in frags:
            lp.deliver(fragment)
        returned = lp.fail()
        assert returned == frags
        assert orphans == frags
        assert lp.fragments_orphaned.count == 3
        assert lp.buffered_fragments == 0

    def test_delivery_to_dead_processor_orphans(self):
        env, lp = self.make_lp()
        orphans = []
        lp.on_orphan = orphans.append
        lp.fail()
        fragment = LogFragment(env, 1, 0)
        lp.deliver(fragment)
        assert orphans == [fragment]
        assert lp.fragments_received.count == 0

    def test_fail_is_idempotent(self):
        env, lp = self.make_lp()
        lp.deliver(LogFragment(env, 1, 0))
        assert len(lp.fail()) == 1
        assert lp.fail() == []


def run_with_lp_failure(fail_at_ms=40.0, n_lps=3, policy=SelectionPolicy.CYCLIC):
    config = MachineConfig()
    arch = ParallelLoggingArchitecture(
        LoggingConfig(n_log_processors=n_lps, selection=policy)
    )
    plan = FaultPlan.of(
        FaultSpec(FaultKind.LP_FAIL, at_time=fail_at_ms, target=0),
        seed=config.seed,
    )
    injector = FaultInjector(plan)
    machine = DatabaseMachine(config, arch, faults=injector)
    injector.arm(machine)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=8, max_pages=40),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    result = machine.run(txns)
    return machine, arch, txns, result


class TestGracefulDegradation:
    def test_run_completes_with_all_commits(self):
        machine, arch, txns, result = run_with_lp_failure()
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert not machine.crashed

    def test_no_fragment_is_lost(self):
        machine, arch, txns, result = run_with_lp_failure()
        # Every update produced a fragment; every fragment either became
        # durable on its original processor or was orphaned and re-shipped
        # to a survivor (commit waited on fragment.durable either way).
        orphaned = result.counter("log_fragments_orphaned")
        reshipped = result.counter("log_fragments_reshipped")
        assert reshipped == orphaned
        assert result.counter("log_fragments") >= sum(t.n_writes for t in txns)

    def test_survivors_absorb_the_load(self):
        machine, arch, txns, result = run_with_lp_failure()
        dead = arch.log_processors[0]
        survivors = arch.log_processors[1:]
        assert not dead.alive
        assert all(lp.alive for lp in survivors)
        # Fragments shipped after the failure all landed on survivors.
        assert sum(lp.fragments_received.count for lp in survivors) > 0

    def test_failure_is_deterministic(self):
        first = run_with_lp_failure()[3]
        second = run_with_lp_failure()[3]
        assert first.makespan_ms == second.makespan_ms
        assert first.counters == second.counters


class TestMessageLossOnLink:
    def test_lossy_link_retransmits_and_completes(self):
        config = MachineConfig()
        arch = ParallelLoggingArchitecture(LoggingConfig(n_log_processors=2))
        plan = FaultPlan.of(
            FaultSpec(FaultKind.MSG_LOSS, probability=0.2), seed=config.seed
        )
        injector = FaultInjector(plan)
        machine = DatabaseMachine(config, arch, faults=injector)
        txns = generate_transactions(
            WorkloadConfig(n_transactions=6, max_pages=30),
            config.db_pages,
            RandomStreams(11).stream("workload"),
        )
        machine.run(txns)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        link = arch._link
        assert link.messages_lost.count > 0
        assert link.retransmissions.count >= link.messages_lost.count


class TestTimedMachineCrash:
    def test_timed_crash_halts_run_and_reports(self):
        config = MachineConfig()
        arch = ParallelLoggingArchitecture(LoggingConfig(n_log_processors=2))
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, at_time=25.0), seed=config.seed
        )
        injector = FaultInjector(plan)
        machine = DatabaseMachine(config, arch, faults=injector)
        injector.arm(machine)
        txns = generate_transactions(
            WorkloadConfig(n_transactions=8, max_pages=40),
            config.db_pages,
            RandomStreams(11).stream("workload"),
        )
        result = machine.run(txns)
        assert machine.crashed
        assert result.extras["crashed_at"] == pytest.approx(25.0)
        assert machine.crash_reason == "timed@25.0"
