"""Shape tests: the paper's qualitative findings must hold in the simulator.

These are the reproduction's scientific assertions — orderings, ratios and
crossovers from the paper's Tables 1-12 — run on a reduced transaction load
to keep the suite quick.  Absolute values are checked loosely (the authors'
simulator internals are unpublished); *who wins and by roughly what factor*
is checked tightly.
"""

import pytest

from repro.core import (
    DifferentialConfig,
    DifferentialFileArchitecture,
    LoggingConfig,
    LogMode,
    OverwritingArchitecture,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
    SelectionPolicy,
    ShadowConfig,
    VersionSelectionArchitecture,
)
from repro.experiments import CONFIGURATIONS, ExperimentSettings, run_configuration
from repro.experiments.tables import TABLE3_MACHINE

SETTINGS = ExperimentSettings(n_transactions=12)

CONV_RAND = CONFIGURATIONS["conventional-random"]
PAR_RAND = CONFIGURATIONS["parallel-random"]
CONV_SEQ = CONFIGURATIONS["conventional-sequential"]
PAR_SEQ = CONFIGURATIONS["parallel-sequential"]


@pytest.fixture(scope="module")
def bare():
    return {
        name: run_configuration(config, None, SETTINGS)
        for name, config in CONFIGURATIONS.items()
    }


class TestBareMachineShape:
    """Table 1 'without log' column: the four configurations order as in
    the paper: par-seq << conv-seq < par-rand <= conv-rand ~ 18 ms."""

    def test_conventional_random_near_disk_bound_anchor(self, bare):
        # Two IBM-3350s at ~36 ms/random access => ~18 ms/page.
        assert 15.0 <= bare["conventional-random"].execution_time_per_page <= 21.0

    def test_sequential_beats_random_on_conventional(self, bare):
        assert (
            bare["conventional-sequential"].execution_time_per_page
            < 0.8 * bare["conventional-random"].execution_time_per_page
        )

    def test_parallel_sequential_is_dramatically_faster(self, bare):
        assert (
            bare["parallel-sequential"].execution_time_per_page
            < 0.3 * bare["conventional-sequential"].execution_time_per_page
        )

    def test_parallel_disks_never_hurt_random(self, bare):
        assert (
            bare["parallel-random"].execution_time_per_page
            <= 1.05 * bare["conventional-random"].execution_time_per_page
        )

    def test_data_disks_saturated_except_nothing(self, bare):
        assert bare["conventional-random"].utilization("data_disks") > 0.9

    def test_qps_poorly_utilized_except_parallel_sequential(self, bare):
        assert bare["conventional-random"].utilization("qp") < 0.25
        assert bare["parallel-sequential"].utilization("qp") > 0.5


class TestLoggingShape:
    """Tables 1-2: logical logging is (nearly) free; one log disk idles."""

    @pytest.fixture(scope="class")
    def logged(self):
        return {
            name: run_configuration(
                config, lambda: ParallelLoggingArchitecture(LoggingConfig()), SETTINGS
            )
            for name, config in CONFIGURATIONS.items()
        }

    def test_logging_does_not_hurt_throughput(self, bare, logged):
        for name in CONFIGURATIONS:
            assert (
                logged[name].execution_time_per_page
                <= 1.10 * bare[name].execution_time_per_page
            ), name

    def test_log_disk_utilization_tiny(self, logged):
        assert logged["conventional-random"].utilization("log_disks") < 0.08
        # The parallel-sequential machine updates pages much faster, so its
        # log disk is busier (paper: 0.13 vs 0.02) but still far from busy.
        assert (
            logged["conventional-random"].utilization("log_disks")
            < logged["parallel-sequential"].utilization("log_disks")
            < 0.5
        )

    def test_few_pages_blocked_waiting_for_log(self, logged):
        assert logged["conventional-random"].averages["blocked_pages"] < 10


class TestTable3Shape:
    """Physical logging on the fast machine saturates one log disk; more
    log disks restore performance; txn-mod selection is the loser."""

    #: Selection-policy contrasts need a longer run to rise above noise.
    SETTINGS3 = ExperimentSettings(n_transactions=24)

    @pytest.fixture(scope="class")
    def results(self):
        def run(n, policy=SelectionPolicy.CYCLIC):
            return run_configuration(
                PAR_SEQ,
                lambda: ParallelLoggingArchitecture(
                    LoggingConfig(
                        n_log_processors=n, mode=LogMode.PHYSICAL, selection=policy
                    )
                ),
                self.SETTINGS3,
                machine_overrides=TABLE3_MACHINE,
            )

        return {
            "bare": run_configuration(
                PAR_SEQ, None, self.SETTINGS3, machine_overrides=TABLE3_MACHINE
            ),
            1: run(1),
            3: run(3),
            5: run(5),
            "txn_mod_4": run(4, SelectionPolicy.TXN_MOD),
            "random_4": run(4, SelectionPolicy.RANDOM),
        }

    def test_one_log_disk_is_the_bottleneck(self, results):
        assert (
            results[1].execution_time_per_page
            > 1.8 * results["bare"].execution_time_per_page
        )
        assert results[1].utilization("log_disks") > 0.9

    def test_more_log_disks_restore_performance(self, results):
        assert results[3].execution_time_per_page < 0.75 * results[1].execution_time_per_page
        assert results[5].execution_time_per_page <= 1.02 * results[3].execution_time_per_page

    def test_txn_mod_selection_loses(self, results):
        # Few concurrent transactions funnel everything to few log disks.
        assert (
            results["txn_mod_4"].execution_time_per_page
            > 1.05 * results["random_4"].execution_time_per_page
        )

    def test_blocked_pages_pile_up_behind_one_log_disk(self, results):
        assert results[1].averages["blocked_pages"] > 2.5 * results[5].averages["blocked_pages"]

    def test_data_disk_accesses_increase_with_log_bottleneck(self, results):
        assert results[1].counter("data_disk_accesses") > results[5].counter(
            "data_disk_accesses"
        )


class TestShadowShape:
    """Tables 4-6: 1 PT processor bottlenecks random loads; 2 PT
    processors or a bigger buffer annul it; sequential loads barely care."""

    #: PT pipelining effects need a longer run to rise above noise.
    SETTINGS_PT = ExperimentSettings(n_transactions=24)

    @pytest.fixture(scope="class")
    def shadow(self):
        def run(config_name, **shadow_kwargs):
            return run_configuration(
                CONFIGURATIONS[config_name],
                lambda: PageTableShadowArchitecture(ShadowConfig(**shadow_kwargs)),
                self.SETTINGS_PT,
            )

        return {
            "rand_1ptp": run("conventional-random"),
            "rand_2ptp": run("conventional-random", n_pt_processors=2),
            "rand_b50": run("conventional-random", pt_buffer_pages=50),
            "seq_clustered": run("conventional-sequential"),
            "seq_scrambled": run("conventional-sequential", clustered=False),
            "parseq_scrambled": run("parallel-sequential", clustered=False),
        }

    @pytest.fixture(scope="class")
    def bare_pt(self):
        return run_configuration(CONV_RAND, None, self.SETTINGS_PT)

    def test_one_pt_processor_degrades_random(self, bare_pt, shadow):
        assert (
            shadow["rand_1ptp"].execution_time_per_page
            > 1.04 * bare_pt.execution_time_per_page
        )
        assert shadow["rand_1ptp"].utilization("pt_disks") > 0.9

    def test_pt_bottleneck_starves_data_disks(self, bare_pt, shadow):
        assert (
            shadow["rand_1ptp"].utilization("data_disks")
            < bare_pt.utilization("data_disks") - 0.05
        )

    def test_two_pt_processors_annul_degradation(self, bare_pt, shadow):
        assert (
            shadow["rand_2ptp"].execution_time_per_page
            <= 1.06 * bare_pt.execution_time_per_page
        )

    def test_bigger_buffer_annuls_degradation(self, shadow):
        assert (
            shadow["rand_b50"].execution_time_per_page
            < shadow["rand_1ptp"].execution_time_per_page
        )

    def test_sequential_barely_touches_the_page_table(self, bare, shadow):
        # <= 2 PT pages per transaction: PT disk nearly idle (paper: 0.06).
        assert shadow["seq_clustered"].utilization("pt_disks") < 0.2

    def test_scrambling_destroys_sequential_performance(self, shadow):
        assert (
            shadow["seq_scrambled"].execution_time_per_page
            > 1.5 * shadow["seq_clustered"].execution_time_per_page
        )

    def test_scrambling_is_catastrophic_on_parallel_disks(self, shadow):
        # Paper: 1.92 -> 18.54, a ~10x collapse; demand at least 4x.
        bare_parseq = run_configuration(PAR_SEQ, None, self.SETTINGS_PT)
        assert (
            shadow["parseq_scrambled"].execution_time_per_page
            > 4 * bare_parseq.execution_time_per_page
        )


class TestOverwritingShape:
    """Tables 7-8: overwriting loses on conventional disks and random
    loads, wins back on parallel-access disks with sequential loads."""

    @pytest.fixture(scope="class")
    def overwriting(self):
        return {
            name: run_configuration(
                config, lambda: OverwritingArchitecture(), SETTINGS
            )
            for name, config in CONFIGURATIONS.items()
        }

    def test_random_overwriting_worse_than_thru_pt(self, overwriting):
        thru_pt = run_configuration(
            CONV_RAND, lambda: PageTableShadowArchitecture(ShadowConfig()), SETTINGS
        )
        assert (
            overwriting["conventional-random"].execution_time_per_page
            > 1.1 * thru_pt.execution_time_per_page
        )

    def test_conventional_overwriting_expensive(self, bare, overwriting):
        assert (
            overwriting["conventional-random"].execution_time_per_page
            > 1.25 * bare["conventional-random"].execution_time_per_page
        )

    def test_parallel_sequential_overwriting_stays_good(self, bare, overwriting):
        """The paper's headline for overwriting: on parallel-access disks a
        sequential transaction's scratch reads and overwrites batch into
        very few accesses (2.31 vs 1.92), while scrambled shadow collapses
        to 18.5."""
        scrambled = run_configuration(
            PAR_SEQ,
            lambda: PageTableShadowArchitecture(ShadowConfig(clustered=False)),
            SETTINGS,
        )
        ow = overwriting["parallel-sequential"].execution_time_per_page
        assert ow < 2.0 * bare["parallel-sequential"].execution_time_per_page
        assert ow < 0.4 * scrambled.execution_time_per_page


class TestDifferentialShape:
    """Tables 9-11: basic saturates the QPs everywhere; optimal recovers
    much of it; degradation grows nonlinearly with differential size."""

    @pytest.fixture(scope="class")
    def diff(self):
        def run(config_name, **kwargs):
            return run_configuration(
                CONFIGURATIONS[config_name],
                lambda: DifferentialFileArchitecture(DifferentialConfig(**kwargs)),
                SETTINGS,
            )

        return {
            "basic_rand": run("conventional-random", optimal=False),
            "basic_parseq": run("parallel-sequential", optimal=False),
            "opt_rand": run("conventional-random"),
            "opt_parseq": run("parallel-sequential"),
            "opt_rand_15": run("conventional-random", size_fraction=0.15),
            "opt_rand_20": run("conventional-random", size_fraction=0.20),
        }

    def test_basic_saturates_query_processors(self, diff):
        assert diff["basic_rand"].utilization("qp") > 0.9
        assert diff["basic_parseq"].utilization("qp") > 0.9

    def test_basic_flattens_all_configurations(self, diff):
        """CPU-bound: the basic approach costs about the same everywhere."""
        a = diff["basic_rand"].execution_time_per_page
        b = diff["basic_parseq"].execution_time_per_page
        assert abs(a - b) / max(a, b) < 0.25

    def test_optimal_much_cheaper_than_basic(self, diff):
        assert (
            diff["opt_rand"].execution_time_per_page
            < 0.65 * diff["basic_rand"].execution_time_per_page
        )

    def test_optimal_still_hurts_parallel_sequential_badly(self, bare, diff):
        # Paper: 1.9 -> 13.9; demand at least 3x.
        assert (
            diff["opt_parseq"].execution_time_per_page
            > 3 * bare["parallel-sequential"].execution_time_per_page
        )

    def test_nonlinear_degradation_with_size(self, diff):
        e10 = diff["opt_rand"].execution_time_per_page
        e15 = diff["opt_rand_15"].execution_time_per_page
        e20 = diff["opt_rand_20"].execution_time_per_page
        assert e10 < e15 < e20
        assert (e20 - e15) > (e15 - e10)  # growth accelerates


class TestVersionSelectionShape:
    """Section 4.2.5: version selection lengthens every read transfer."""

    def test_version_selection_slower_than_bare(self):
        overrides = {"db_pages": 60_000}
        bare = run_configuration(CONV_RAND, None, SETTINGS, machine_overrides=overrides)
        version = run_configuration(
            CONV_RAND,
            lambda: VersionSelectionArchitecture(),
            SETTINGS,
            machine_overrides=overrides,
        )
        assert (
            version.execution_time_per_page > 1.03 * bare.execution_time_per_page
        )


class TestGrandComparisonShape:
    """Table 12's bottom line: parallel logging is the best *overall*
    recovery architecture — its collection of recovery data overlaps data
    processing, so it stays near the bare machine in every configuration,
    while each rival collapses somewhere (shadow when clustering cannot be
    maintained, overwriting on conventional disks, differential files
    everywhere the QPs saturate)."""

    @pytest.fixture(scope="class")
    def logging_results(self, bare):
        return {
            name: run_configuration(
                config, lambda: ParallelLoggingArchitecture(LoggingConfig()), SETTINGS
            )
            for name, config in CONFIGURATIONS.items()
        }

    def test_logging_stays_near_bare_everywhere(self, bare, logging_results):
        for name in CONFIGURATIONS:
            assert (
                logging_results[name].execution_time_per_page
                <= 1.15 * bare[name].execution_time_per_page
            ), name

    def test_every_rival_collapses_somewhere(self, logging_results):
        rivals = {
            # Shadow without the physical-clustering assumption.
            "scrambled-shadow": (
                "parallel-sequential",
                lambda: PageTableShadowArchitecture(ShadowConfig(clustered=False)),
            ),
            "overwriting": (
                "conventional-random",
                lambda: OverwritingArchitecture(),
            ),
            "differential": (
                "parallel-sequential",
                lambda: DifferentialFileArchitecture(DifferentialConfig()),
            ),
        }
        for rival_name, (config_name, factory) in rivals.items():
            rival = run_configuration(CONFIGURATIONS[config_name], factory, SETTINGS)
            assert (
                rival.execution_time_per_page
                > 1.3 * logging_results[config_name].execution_time_per_page
            ), f"{rival_name} did not collapse on {config_name}"

    def test_logging_beats_rivals_on_random_loads(self, logging_results):
        """On the random configurations every alternative is strictly
        worse than logging (paper Table 12, first two rows)."""
        for name in ("conventional-random", "parallel-random"):
            config = CONFIGURATIONS[name]
            for factory in (
                lambda: PageTableShadowArchitecture(ShadowConfig()),
                lambda: OverwritingArchitecture(),
                lambda: DifferentialFileArchitecture(DifferentialConfig()),
            ):
                rival = run_configuration(config, factory, SETTINGS)
                assert (
                    logging_results[name].execution_time_per_page
                    <= 1.05 * rival.execution_time_per_page
                ), name
