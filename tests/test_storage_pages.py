"""Unit + property tests for the slotted-page codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import PageFullError, SlottedPage


class TestSlottedPageBasics:
    def test_insert_and_get(self):
        page = SlottedPage()
        slot = page.insert(b"hello")
        assert page.get(slot) == b"hello"
        assert len(page) == 1

    def test_multiple_records_get_distinct_slots(self):
        page = SlottedPage()
        slots = [page.insert(b"r%d" % i) for i in range(5)]
        assert len(set(slots)) == 5
        for i, slot in enumerate(slots):
            assert page.get(slot) == b"r%d" % i

    def test_get_out_of_range(self):
        page = SlottedPage()
        assert page.get(0) is None
        assert page.get(-1) is None

    def test_delete(self):
        page = SlottedPage()
        slot = page.insert(b"x")
        assert page.delete(slot)
        assert page.get(slot) is None
        assert not page.delete(slot)  # double delete

    def test_delete_keeps_other_slots_stable(self):
        page = SlottedPage()
        a = page.insert(b"a")
        b = page.insert(b"b")
        page.delete(a)
        assert page.get(b) == b"b"

    def test_dead_slot_reused(self):
        page = SlottedPage()
        a = page.insert(b"a")
        page.insert(b"b")
        page.delete(a)
        c = page.insert(b"c")
        assert c == a  # directory entry reused
        assert page.n_slots == 2

    def test_update_in_place(self):
        page = SlottedPage()
        slot = page.insert(b"old")
        page.update(slot, b"newer-bytes")
        assert page.get(slot) == b"newer-bytes"

    def test_update_empty_slot_raises(self):
        page = SlottedPage()
        with pytest.raises(KeyError):
            page.update(0, b"x")

    def test_records_iterates_live_only(self):
        page = SlottedPage()
        a = page.insert(b"a")
        b = page.insert(b"b")
        page.delete(a)
        assert list(page.records()) == [(b, b"b")]

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            SlottedPage().insert("text")


class TestSpaceManagement:
    def test_page_full(self):
        page = SlottedPage(page_size=64)
        page.insert(b"x" * 40)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 40)

    def test_fits_matches_insert(self):
        page = SlottedPage(page_size=128)
        record = b"z" * 50
        while page.fits(record):
            page.insert(record)
        with pytest.raises(PageFullError):
            page.insert(record)

    def test_free_space_shrinks(self):
        page = SlottedPage()
        before = page.free_space()
        page.insert(b"x" * 100)
        assert page.free_space() < before - 100

    def test_delete_reclaims_space(self):
        page = SlottedPage(page_size=64)
        slot = page.insert(b"x" * 40)
        page.delete(slot)
        page.insert(b"y" * 40)  # fits again

    def test_tiny_page_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage(page_size=4)

    def test_oversized_page_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage(page_size=2**17)


class TestSerialization:
    def test_round_trip(self):
        page = SlottedPage()
        slots = [page.insert(b"record-%d" % i) for i in range(10)]
        page.delete(slots[3])
        raw = page.encode()
        assert len(raw) == 4096
        again = SlottedPage.decode(raw)
        assert list(again.records()) == list(page.records())

    def test_empty_bytes_is_fresh_page(self):
        page = SlottedPage.decode(b"")
        assert len(page) == 0
        assert page.n_slots == 0

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage.decode(b"abc", page_size=4096)

    def test_slots_stay_stable_across_round_trips(self):
        page = SlottedPage()
        a = page.insert(b"a")
        b = page.insert(b"bb")
        page.delete(a)
        again = SlottedPage.decode(page.encode())
        assert again.get(a) is None
        assert again.get(b) == b"bb"

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.binary(min_size=0, max_size=60)),
            max_size=30,
        )
    )
    def test_round_trip_after_arbitrary_ops(self, ops):
        """Model-based: page contents == dict model, across round trips."""
        page = SlottedPage(page_size=4096)
        model = {}
        for is_delete, payload in ops:
            if is_delete and model:
                victim = sorted(model)[0]
                page.delete(victim)
                del model[victim]
            elif page.fits(payload):
                slot = page.insert(payload)
                model[slot] = payload
        again = SlottedPage.decode(page.encode())
        assert dict(again.records()) == model
