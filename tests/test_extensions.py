"""Tests for the extensions beyond the paper's evaluation: SSTF disk
scheduling, timed parallel checkpointing, and hotspot workloads."""

import random

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.hardware import ConventionalDisk, DiskAddress, IBM_3350
from repro.sim import Environment, RandomStreams, SimulationError
from repro.workload import TransactionStatus


class TestSstfScheduling:
    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            ConventionalDisk(Environment(), IBM_3350, scheduling="elevator")
        with pytest.raises(ValueError):
            MachineConfig(disk_scheduling="elevator")

    def test_sstf_serves_nearest_first(self):
        env = Environment()
        disk = ConventionalDisk(
            env, IBM_3350, rng=random.Random(0), scheduling="sstf"
        )
        # Occupy the head at cylinder 0, then queue far and near requests.
        blocker = disk.read([DiskAddress(0, 0, 0)])
        far = disk.read([DiskAddress(500, 0, 0)])
        near = disk.read([DiskAddress(10, 0, 0)])
        env.run(until=blocker.done)
        env.run(until=near.done)
        assert not far.done.processed  # near overtook far

    def test_fcfs_preserves_order(self):
        env = Environment()
        disk = ConventionalDisk(
            env, IBM_3350, rng=random.Random(0), scheduling="fcfs"
        )
        blocker = disk.read([DiskAddress(0, 0, 0)])
        far = disk.read([DiskAddress(500, 0, 0)])
        near = disk.read([DiskAddress(10, 0, 0)])
        env.run(until=blocker.done)
        env.run(until=far.done)
        assert not near.done.processed

    def test_sstf_improves_random_throughput(self):
        def run(policy):
            config = MachineConfig(disk_scheduling=policy)
            txns = generate_transactions(
                WorkloadConfig(n_transactions=10),
                config.db_pages,
                RandomStreams(7).stream("workload"),
            )
            return DatabaseMachine(config, None).run(txns)

        fcfs = run("fcfs")
        sstf = run("sstf")
        assert (
            sstf.execution_time_per_page < 1.01 * fcfs.execution_time_per_page
        )


class TestTimedCheckpointing:
    def run_logging(self, interval):
        config = MachineConfig()
        txns = generate_transactions(
            WorkloadConfig(n_transactions=8, max_pages=120),
            config.db_pages,
            RandomStreams(7).stream("workload"),
        )
        arch = ParallelLoggingArchitecture(
            LoggingConfig(checkpoint_interval_ms=interval)
        )
        machine = DatabaseMachine(config, arch)
        return machine.run(txns), arch, txns

    def test_checkpoints_taken(self):
        result, arch, _ = self.run_logging(interval=2000.0)
        assert arch.checkpoints_taken >= 2

    def test_checkpointing_does_not_quiesce(self):
        """The paper's Section 3.1 claim: checkpointing overlaps normal
        processing — throughput is unaffected."""
        with_cp, _, txns = self.run_logging(interval=1000.0)
        without_cp, _, _ = self.run_logging(interval=None)
        assert (
            with_cp.execution_time_per_page
            <= 1.05 * without_cp.execution_time_per_page
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)

    def test_checkpoint_pages_written(self):
        result, arch, _ = self.run_logging(interval=2000.0)
        # Each checkpoint writes one page per log disk (1 here), on top of
        # the regular full log pages.
        assert result.counter("log_pages_written") >= arch.checkpoints_taken


class TestHotspotWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(hotspot_fraction=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(hotspot_fraction=1.0)
        with pytest.raises(ValueError):
            WorkloadConfig(hotspot_probability=1.5)

    def test_references_skew_into_hot_region(self):
        config = WorkloadConfig(
            n_transactions=50, hotspot_fraction=0.1, hotspot_probability=0.8
        )
        txns = generate_transactions(config, 10_000, random.Random(5))
        refs = [p for t in txns for p in t.read_pages]
        hot = sum(1 for p in refs if p < 1_000)
        assert hot / len(refs) > 0.6  # ~0.8 expected, loose bound

    def test_uniform_when_disabled(self):
        config = WorkloadConfig(n_transactions=50)
        txns = generate_transactions(config, 10_000, random.Random(5))
        refs = [p for t in txns for p in t.read_pages]
        hot = sum(1 for p in refs if p < 1_000)
        assert 0.05 < hot / len(refs) < 0.15

    def test_pages_remain_distinct(self):
        config = WorkloadConfig(
            n_transactions=20, hotspot_fraction=0.05, hotspot_probability=0.9
        )
        txns = generate_transactions(config, 5_000, random.Random(6))
        for txn in txns:
            assert len(set(txn.read_pages)) == len(txn.read_pages)

    def test_sequential_hotspot_biases_start(self):
        config = WorkloadConfig(
            n_transactions=60,
            sequential=True,
            hotspot_fraction=0.1,
            hotspot_probability=0.9,
            max_pages=50,
        )
        txns = generate_transactions(config, 10_000, random.Random(7))
        in_hot = sum(1 for t in txns if t.read_pages[0] < 1_000)
        assert in_hot / len(txns) > 0.6

    def test_hotspot_increases_lock_contention(self):
        def run(hotspot):
            config = MachineConfig(mpl=4)
            workload = WorkloadConfig(
                n_transactions=10,
                max_pages=100,
                hotspot_fraction=hotspot,
                hotspot_probability=0.9,
            )
            txns = generate_transactions(
                workload, config.db_pages, RandomStreams(9).stream("workload")
            )
            return DatabaseMachine(config, None).run(txns)

        uniform = run(None)
        skewed = run(0.001)  # hot set of ~120 pages
        assert skewed.counter("lock_blocks") > uniform.counter("lock_blocks")


class TestGroupCommit:
    def run_logging(self, window, n=10):
        config = MachineConfig()
        txns = generate_transactions(
            WorkloadConfig(n_transactions=n, max_pages=120),
            config.db_pages,
            RandomStreams(7).stream("workload"),
        )
        arch = ParallelLoggingArchitecture(
            LoggingConfig(group_commit_window_ms=window)
        )
        machine = DatabaseMachine(config, arch)
        return machine.run(txns), txns

    def test_group_commit_reduces_forced_writes(self):
        immediate, _ = self.run_logging(window=None)
        grouped, _ = self.run_logging(window=100.0)
        assert grouped.counter("log_forces") <= immediate.counter("log_forces")

    def test_group_commit_preserves_correctness(self):
        result, txns = self.run_logging(window=100.0)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        # Every update still reaches the disk.
        assert result.counter("data_pages_written") == sum(t.n_writes for t in txns)

    def test_group_commit_costs_little_throughput(self):
        immediate, _ = self.run_logging(window=None)
        grouped, _ = self.run_logging(window=50.0)
        assert (
            grouped.execution_time_per_page
            <= 1.08 * immediate.execution_time_per_page
        )
