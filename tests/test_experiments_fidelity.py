"""Tests for the fidelity scorer, plus calibration regression guards.

The regression guards are the repository's early-warning system: a model
change that silently drifts the calibration away from the paper fails
here before it fails a reviewer.
"""

import pytest

from repro.cli import main
from repro.experiments import ExperimentSettings
from repro.experiments.fidelity import CellComparison, FidelityReport, fidelity_summary

QUICK = ExperimentSettings(n_transactions=12)


class TestScoringMechanics:
    def test_relative_error(self):
        cell = CellComparison("t", "c", measured=11.0, paper=10.0)
        assert cell.relative_error == pytest.approx(0.1)

    def test_zero_paper_value(self):
        assert CellComparison("t", "c", 0.0, 0.0).relative_error == 0.0
        assert CellComparison("t", "c", 1.0, 0.0).relative_error == 1.0

    def test_report_aggregates(self):
        report = FidelityReport(
            [
                CellComparison("a", "x", 11.0, 10.0),
                CellComparison("a", "y", 12.0, 10.0),
                CellComparison("b", "z", 10.0, 10.0),
            ]
        )
        assert report.mean_relative_error == pytest.approx(0.1)
        assert report.by_table() == {"a": pytest.approx(0.15), "b": 0.0}
        assert report.worst(1)[0].cell == "y"

    def test_render(self):
        report = FidelityReport([CellComparison("a", "x", 11.0, 10.0)])
        text = report.render()
        assert "1 paper cells" in text
        assert "10.0%" in text

    def test_empty_report(self):
        assert FidelityReport([]).mean_relative_error == 0.0


class TestCalibrationRegression:
    """Quick-run fidelity must stay within honest bounds.  Thresholds are
    loose enough for 12-transaction sampling noise but tight enough to
    catch a recalibration accident (these sat near 6-10 % when written)."""

    def test_logging_tables_track_paper(self):
        report = fidelity_summary(QUICK, tables=("table1",))
        assert report.mean_relative_error < 0.15

    def test_shadow_tables_track_paper(self):
        report = fidelity_summary(QUICK, tables=("table6", "table8"))
        assert report.mean_relative_error < 0.20

    def test_differential_tables_track_paper(self):
        report = fidelity_summary(QUICK, tables=("table9",))
        assert report.mean_relative_error < 0.20

    def test_cell_count_complete(self):
        report = fidelity_summary(QUICK, tables=("table1", "table8"))
        # Table 1 pairs 8 cells (4 configs x with/without); Table 8 six.
        assert len(report.cells) == 14


class TestCliFidelity:
    def test_fidelity_command(self, capsys):
        assert main(["fidelity", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "mean |relative error|" in out
        assert "worst cells:" in out
