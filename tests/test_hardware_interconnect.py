"""Unit tests for the interconnect model."""

import pytest

from repro.hardware import Interconnect
from repro.sim import Environment


class TestInterconnect:
    def test_transfer_time(self):
        env = Environment()
        link = Interconnect(env, bandwidth_mb_per_s=1.0)
        # 1 MB/s = 1000 bytes per ms.
        assert link.transfer_ms(4000) == pytest.approx(4.0)

    def test_latency_added(self):
        env = Environment()
        link = Interconnect(env, bandwidth_mb_per_s=1.0, latency_ms=2.0)
        assert link.transfer_ms(1000) == pytest.approx(3.0)

    def test_transfers_serialize(self):
        env = Environment()
        link = Interconnect(env, bandwidth_mb_per_s=1.0)
        done = []

        def sender(env, link, n):
            yield link.transfer(1000)
            done.append(env.now)

        env.process(sender(env, link, 1))
        env.process(sender(env, link, 2))
        env.run()
        assert done == [1.0, 2.0]

    def test_bytes_counted(self):
        env = Environment()
        link = Interconnect(env, bandwidth_mb_per_s=1.0)

        def sender(env):
            yield link.transfer(500)

        env.process(sender(env))
        env.run()
        assert link.bytes_moved.count == 500

    def test_slow_link_takes_longer(self):
        env = Environment()
        slow = Interconnect(env, bandwidth_mb_per_s=0.01)
        assert slow.transfer_ms(600) == pytest.approx(60.0)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            Interconnect(Environment(), bandwidth_mb_per_s=0)
