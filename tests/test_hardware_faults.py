"""Media and interconnect faults: torn writes, disk failure, message loss."""

import random

import pytest

from repro.hardware import ConventionalDisk, DiskAddress, IBM_3350, Interconnect
from repro.hardware.disk import DiskFailure
from repro.hardware.interconnect import MessageLost
from repro.sim import Environment


class ScriptedFaults:
    """A stand-in injector whose predicates replay a fixed script."""

    def __init__(self, torn=(), drops=()):
        self._torn = list(torn)
        self._drops = list(drops)

    def torn_write(self, target=None):
        return self._torn.pop(0) if self._torn else False

    def drop_message(self, target=None):
        return self._drops.pop(0) if self._drops else False

    def bit_rot(self, target=None):
        return False


def one_write(disk):
    return disk.write([DiskAddress.from_linear(0, IBM_3350)], tag="test")


class TestDiskFailure:
    def make_disk(self):
        env = Environment()
        return env, ConventionalDisk(env, IBM_3350, name="d0", rng=random.Random(0))

    def test_requests_error_after_fail(self):
        env, disk = self.make_disk()
        disk.fail()
        request = one_write(disk)
        env.run()
        assert request.done.triggered
        assert not request.ok
        assert request.error == "disk-failed"
        assert disk.failed_requests.count == 1

    def test_fail_drains_queued_requests(self):
        env, disk = self.make_disk()
        first = one_write(disk)
        second = one_write(disk)

        def killer(env, disk):
            yield env.timeout(0.1)
            disk.fail()

        env.process(killer(env, disk))
        env.run()
        assert first.done.triggered and second.done.triggered
        assert not second.ok

    def test_fail_is_idempotent(self):
        env, disk = self.make_disk()
        disk.fail()
        disk.fail()
        assert disk.failed

    def test_healthy_request_is_ok(self):
        env, disk = self.make_disk()
        request = one_write(disk)
        env.run()
        assert request.ok
        assert request.error is None and not request.torn

    def test_failure_error_type_exists(self):
        assert issubclass(DiskFailure, Exception)


class TestTornWrites:
    def test_scripted_torn_write_marks_request(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, name="d0", rng=random.Random(0))
        disk.faults = ScriptedFaults(torn=[True])
        request = one_write(disk)
        env.run()
        assert request.torn
        assert not request.ok
        assert disk.torn_writes.count == 1

    def test_reads_never_tear(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, name="d0", rng=random.Random(0))
        disk.faults = ScriptedFaults(torn=[True, True])
        request = disk.read([DiskAddress.from_linear(0, IBM_3350)], tag="test")
        env.run()
        assert request.ok
        assert disk.torn_writes.count == 0


class TestMessageLoss:
    def run_reliable(self, drops, max_retries=4):
        env = Environment()
        link = Interconnect(env, bandwidth_mb_per_s=1.0)
        link.faults = ScriptedFaults(drops=drops)
        outcome = {}

        def sender(env):
            try:
                yield link.reliable_transfer(1000, max_retries=max_retries)
                outcome["delivered"] = True
            except MessageLost as lost:
                outcome["error"] = lost

        env.process(sender(env))
        env.run()
        return env, link, outcome

    def test_plain_transfer_reports_loss(self):
        env = Environment()
        link = Interconnect(env, bandwidth_mb_per_s=1.0)
        link.faults = ScriptedFaults(drops=[True])
        seen = {}

        def sender(env):
            seen["delivered"] = yield link.transfer(1000)

        env.process(sender(env))
        env.run()
        assert seen["delivered"] is False
        assert link.messages_lost.count == 1
        assert link.bytes_moved.count == 0

    def test_retransmission_recovers(self):
        env, link, outcome = self.run_reliable(drops=[True, True])
        assert outcome.get("delivered")
        assert link.retransmissions.count == 2
        assert link.messages_lost.count == 2

    def test_bounded_retries_raise(self):
        env, link, outcome = self.run_reliable(drops=[True] * 10, max_retries=2)
        assert isinstance(outcome.get("error"), MessageLost)
        assert link.retransmissions.count == 2

    def test_backoff_spends_time(self):
        env, link, outcome = self.run_reliable(drops=[True])
        # one wire time (1 ms) + 1 ms backoff + second wire time
        assert env.now == pytest.approx(3.0)
