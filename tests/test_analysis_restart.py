"""Tests for the restart-time estimator."""

import pytest

from repro.analysis import (
    checkpoint_interval_sweep,
    estimate_functional_restart,
    estimate_restart,
)
from repro.core import (
    DifferentialFileArchitecture,
    LoggingConfig,
    OverwritingArchitecture,
    OverwritingMode,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
)
from repro.experiments import CONFIGURATIONS, ExperimentSettings, run_configuration
from repro.machine import MachineConfig
from repro.metrics import RunResult


def fake_result(architecture, **extras):
    result = RunResult(
        architecture=architecture,
        makespan_ms=10_000.0,
        pages_processed=1000,
        mean_completion_ms=100.0,
    )
    result.counters.update(extras.pop("counters", {}))
    result.averages.update(extras.pop("averages", {}))
    return result


class TestEstimatorShapes:
    def test_bare_restart_is_free(self):
        estimate = estimate_restart(fake_result("bare"), MachineConfig())
        assert estimate.total_ms == 0.0

    def test_logging_scan_scales_with_log_volume(self):
        small = estimate_restart(
            fake_result("logging[...]", counters={"log_pages_written": 10}),
            MachineConfig(),
        )
        large = estimate_restart(
            fake_result("logging[...]", counters={"log_pages_written": 1000}),
            MachineConfig(),
        )
        assert large.scan_ms > 10 * small.scan_ms

    def test_logging_scan_parallelizes_over_log_disks(self):
        result = fake_result("logging[...]", counters={"log_pages_written": 900})
        one = estimate_restart(result, MachineConfig(), n_log_disks=1)
        three = estimate_restart(result, MachineConfig(), n_log_disks=3)
        assert three.scan_ms < 0.5 * one.scan_ms

    def test_shadow_restart_nearly_free(self):
        estimate = estimate_restart(fake_result("shadow-pt[...]"), MachineConfig())
        assert estimate.total_ms < 50.0
        assert estimate.redo_ms == estimate.undo_ms == 0.0

    def test_version_selection_restart_free(self):
        estimate = estimate_restart(fake_result("version-selection"), MachineConfig())
        assert estimate.total_ms == 0.0

    def test_no_undo_pays_redo_not_undo(self):
        estimate = estimate_restart(
            fake_result("overwriting[no-undo]", counters={"scratch_writes": 100}),
            MachineConfig(),
        )
        assert estimate.redo_ms > 0 and estimate.undo_ms == 0

    def test_no_redo_pays_undo_not_redo(self):
        estimate = estimate_restart(
            fake_result("overwriting[no-redo]", counters={"scratch_writes": 100}),
            MachineConfig(),
        )
        assert estimate.undo_ms > 0 and estimate.redo_ms == 0

    def test_differential_restart_trivial(self):
        estimate = estimate_restart(fake_result("differential[...]"), MachineConfig())
        assert estimate.total_ms < 50.0


class TestAgainstRuns:
    """Estimates from real runs: logging restarts cost more than shadow's,
    and checkpointed-style small logs beat big ones — the paper's trade."""

    SETTINGS = ExperimentSettings(n_transactions=8)

    def run(self, factory):
        return run_configuration(
            CONFIGURATIONS["conventional-random"], factory, self.SETTINGS
        )

    def test_tradeoff_ordering(self):
        config = MachineConfig()
        logging_run = self.run(lambda: ParallelLoggingArchitecture(LoggingConfig()))
        shadow_run = self.run(lambda: PageTableShadowArchitecture())
        overwriting_run = self.run(lambda: OverwritingArchitecture())
        differential_run = self.run(lambda: DifferentialFileArchitecture())

        logging_restart = estimate_restart(logging_run, config)
        shadow_restart = estimate_restart(shadow_run, config)
        overwriting_restart = estimate_restart(overwriting_run, config)
        differential_restart = estimate_restart(differential_run, config)

        # The normal-case winner pays the biggest restart bill...
        assert logging_restart.total_ms > shadow_restart.total_ms
        assert logging_restart.total_ms > differential_restart.total_ms
        # ...and the shadow family restarts essentially for free.
        assert shadow_restart.total_ms < 100.0
        assert overwriting_restart.scan_ms > 0


class TestFunctionalEstimator:
    def test_zero_volumes_cost_nothing(self):
        estimate = estimate_functional_restart("wal", 0, 0)
        assert estimate.total_ms == 0.0

    def test_scales_with_record_volume(self):
        small = estimate_functional_restart("wal", 32, 0)
        large = estimate_functional_restart("wal", 3200, 0)
        assert large.scan_ms > 10 * small.scan_ms

    def test_scan_parallelizes_over_log_disks(self):
        one = estimate_functional_restart("wal", 3200, 0, n_log_disks=1)
        three = estimate_functional_restart("wal", 3200, 0, n_log_disks=3)
        assert three.scan_ms < 0.5 * one.scan_ms

    def test_pages_priced_as_random_io(self):
        estimate = estimate_functional_restart("versions", 0, 10)
        assert estimate.redo_ms > 0 and estimate.scan_ms == 0.0


class TestCheckpointCrossValidation:
    """The analytic envelope vs the measured functional restart, at
    several checkpoint cadences: both models must agree that tighter
    checkpointing buys a shorter (never longer) restart, and the
    measurement must sit under the envelope."""

    #: Widest first; shrinking intervals must not lengthen restarts.
    INTERVALS = [None, 16, 8, 4]
    #: Discretization slack: a single extra recovery-data page read.
    SLACK_MS = 30.0

    @pytest.fixture(scope="class")
    def sweep(self):
        return checkpoint_interval_sweep(
            seed=1985, intervals=self.INTERVALS, n_transactions=40
        )

    def test_covers_all_architectures(self, sweep):
        assert len(sweep) == 7
        for arch in sorted(sweep):
            assert len(sweep[arch]) == len(self.INTERVALS)

    def test_measured_under_analytic_envelope(self, sweep):
        for arch in sorted(sweep):
            for row in sweep[arch]:
                assert row.measured.total_ms <= row.analytic.total_ms + 1e-9, (
                    f"{arch} at interval {row.checkpoint_every}: measured "
                    f"{row.measured.total_ms} over bound {row.analytic.total_ms}"
                )

    def test_measured_restart_monotone_in_interval(self, sweep):
        for arch in sorted(sweep):
            costs = [row.measured.total_ms for row in sweep[arch]]
            for wider, tighter in zip(costs, costs[1:]):
                assert tighter <= wider + self.SLACK_MS, (
                    f"{arch}: restart grew from {wider} to {tighter} ms "
                    f"as the checkpoint interval shrank"
                )

    def test_analytic_envelope_monotone_in_interval(self, sweep):
        for arch in sorted(sweep):
            costs = [row.analytic.total_ms for row in sweep[arch]]
            for wider, tighter in zip(costs, costs[1:]):
                assert tighter <= wider + 1e-9

    def test_tighter_cadence_takes_more_checkpoints(self, sweep):
        for arch in sorted(sweep):
            taken = [row.checkpoints_taken for row in sweep[arch]]
            assert taken[0] == 0  # the never-checkpoint baseline
            assert all(a <= b for a, b in zip(taken, taken[1:]))
            assert taken[-1] > 0

    def test_checkpointing_charges_the_normal_case(self, sweep):
        # Checkpoint records (and any compaction rewrites) are overhead
        # the running system pays: record volume grows with cadence.
        for arch in sorted(sweep):
            baseline = sweep[arch][0].overhead_records
            tightest = sweep[arch][-1].overhead_records
            assert tightest > baseline
