"""Unit tests for the disk models."""

import random

import pytest

from repro.hardware import (
    ConventionalDisk,
    DiskAddress,
    IBM_3350,
    ParallelAccessDisk,
    make_disk,
)
from repro.hardware.disk import split_by_cylinder
from repro.sim import Environment, SimulationError


def fixed_latency_rng(value=0.0):
    """An rng whose uniform() always returns ``value`` (kills randomness)."""

    class _Rng(random.Random):
        def uniform(self, a, b):
            return value

    return _Rng(0)


class TestDiskAddress:
    def test_linear_round_trip(self):
        for index in (0, 1, 119, 120, IBM_3350.capacity_pages - 1):
            addr = DiskAddress.from_linear(index, IBM_3350)
            assert addr.linear(IBM_3350) == index

    def test_geometry_decomposition(self):
        addr = DiskAddress.from_linear(121, IBM_3350)
        assert addr == DiskAddress(cylinder=1, track=0, sector=1)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            DiskAddress.from_linear(IBM_3350.capacity_pages, IBM_3350)
        with pytest.raises(ValueError):
            DiskAddress.from_linear(-1, IBM_3350)


class TestGeometryParams:
    def test_ibm3350_capacity(self):
        assert IBM_3350.pages_per_cylinder == 120
        assert IBM_3350.capacity_pages == 555 * 120

    def test_seek_model(self):
        assert IBM_3350.seek_ms(0) == 0.0
        assert IBM_3350.seek_ms(1) == pytest.approx(10.0, abs=0.2)
        assert IBM_3350.seek_ms(554) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            IBM_3350.seek_ms(-1)

    def test_transfer_time(self):
        assert IBM_3350.transfer_ms == pytest.approx(16.7 / 4)

    def test_with_overrides(self):
        fast = IBM_3350.with_overrides(min_seek_ms=1.0)
        assert fast.min_seek_ms == 1.0
        assert IBM_3350.min_seek_ms == 10.0  # original untouched


def run_request(disk, kind, addresses):
    env = disk.env
    request = disk.submit(kind, addresses)
    env.run(until=request.done)
    return env.now


class TestConventionalDisk:
    def test_single_page_cost(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        elapsed = run_request(disk, "read", [DiskAddress(10, 0, 0)])
        # seek(10) + latency 8 + transfer
        expected = IBM_3350.seek_ms(10) + 8.0 + IBM_3350.transfer_ms
        assert elapsed == pytest.approx(expected)

    def test_sequential_pages_stream_within_request(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        addrs = [DiskAddress.from_linear(i, IBM_3350) for i in range(4)]
        elapsed = run_request(disk, "read", addrs)
        expected = 8.0 + 4 * IBM_3350.transfer_ms  # one latency, four transfers
        assert elapsed == pytest.approx(expected)

    def test_no_streaming_across_requests(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        run_request(disk, "read", [DiskAddress.from_linear(0, IBM_3350)])
        t0 = env.now
        run_request(disk, "read", [DiskAddress.from_linear(1, IBM_3350)])
        # The second request pays latency again despite being adjacent.
        assert env.now - t0 == pytest.approx(8.0 + IBM_3350.transfer_ms)

    def test_same_cylinder_skips_seek(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        run_request(disk, "read", [DiskAddress(5, 0, 0)])
        t0 = env.now
        run_request(disk, "read", [DiskAddress(5, 20, 2)])
        assert env.now - t0 == pytest.approx(8.0 + IBM_3350.transfer_ms)

    def test_fifo_service(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(0.0))
        first = disk.read([DiskAddress(0, 0, 0)])
        second = disk.read([DiskAddress(100, 0, 0)])
        env.run(until=second.done)
        assert first.done.processed

    def test_counters(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(0.0))
        disk.read([DiskAddress(0, 0, 0)])
        disk.write([DiskAddress(1, 0, 0), DiskAddress(1, 0, 1)])
        env.run()
        assert disk.accesses.count == 2
        assert disk.pages_read.count == 1
        assert disk.pages_written.count == 2

    def test_utilization_is_busy_fraction(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        request = disk.read([DiskAddress(0, 0, 0)])
        env.run(until=request.done)
        busy = env.now
        env.run(until=busy * 2)  # idle as long as it was busy
        assert disk.utilization() == pytest.approx(0.5)


class TestParallelAccessDisk:
    def test_whole_cylinder_in_one_rotation(self):
        env = Environment()
        disk = ParallelAccessDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        addrs = [
            DiskAddress.from_linear(i, IBM_3350)
            for i in range(IBM_3350.pages_per_cylinder)
        ]
        elapsed = run_request(disk, "read", addrs)
        # seek 0 + latency + full rotation (4 sector positions capped)
        assert elapsed == pytest.approx(8.0 + IBM_3350.rotation_ms)

    def test_one_sector_position_costs_one_transfer(self):
        env = Environment()
        disk = ParallelAccessDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        # Pages on different tracks, same sector: transferred in parallel.
        addrs = [DiskAddress(0, track, 2) for track in range(10)]
        elapsed = run_request(disk, "read", addrs)
        assert elapsed == pytest.approx(8.0 + IBM_3350.transfer_ms)

    def test_rejects_multi_cylinder_request(self):
        env = Environment()
        disk = ParallelAccessDisk(env, IBM_3350, rng=fixed_latency_rng(0.0))
        disk.submit("read", [DiskAddress(0, 0, 0), DiskAddress(1, 0, 0)])
        with pytest.raises(SimulationError):
            env.run()

    def test_coalesces_same_cylinder_same_kind(self):
        env = Environment()
        disk = ParallelAccessDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        # Occupy the disk so the next three requests queue together.
        blocker = disk.read([DiskAddress(50, 0, 0)])
        reads = [disk.read([DiskAddress(3, t, 0)]) for t in range(3)]
        env.run(until=blocker.done)
        env.run()
        assert disk.accesses.count == 2  # blocker + one coalesced access
        assert all(r.done.processed for r in reads)

    def test_does_not_coalesce_mixed_kinds(self):
        env = Environment()
        disk = ParallelAccessDisk(env, IBM_3350, rng=fixed_latency_rng(8.0))
        blocker = disk.read([DiskAddress(50, 0, 0)])
        disk.read([DiskAddress(3, 0, 0)])
        disk.write([DiskAddress(3, 1, 0)])
        env.run(until=blocker.done)
        env.run()
        assert disk.accesses.count == 3


class TestFactoryAndHelpers:
    def test_make_disk(self):
        env = Environment()
        assert isinstance(make_disk(env, IBM_3350, parallel=False), ConventionalDisk)
        assert isinstance(make_disk(env, IBM_3350, parallel=True), ParallelAccessDisk)

    def test_split_by_cylinder(self):
        addrs = [
            DiskAddress(2, 0, 0),
            DiskAddress(0, 1, 1),
            DiskAddress(2, 5, 3),
            DiskAddress(1, 0, 0),
        ]
        groups = split_by_cylinder(addrs)
        assert [g[0].cylinder for g in groups] == [0, 1, 2]
        assert len(groups[2]) == 2

    def test_empty_request_rejected(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350)
        with pytest.raises(SimulationError):
            disk.read([])

    def test_unknown_kind_rejected(self):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350)
        with pytest.raises(SimulationError):
            disk.submit("erase", [DiskAddress(0, 0, 0)])
