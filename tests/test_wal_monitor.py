"""The runtime WAL-invariant monitor, alone and wired into both layers.

The static rule ARCH02 proves the *code paths* order log forces before
write-backs; :class:`~repro.sim.monitor.WALInvariantMonitor` checks the
*executions*.  These tests cover the protocol itself, then run the timed
machine and the functional WAL engine under a strict monitor.
"""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, LogMode, ParallelLoggingArchitecture
from repro.sim import RandomStreams
from repro.sim.monitor import WALInvariantMonitor, WALViolation
from repro.storage import DistributedWalManager


class TestProtocol:
    def test_flush_without_recovery_data_is_fine(self):
        monitor = WALInvariantMonitor()
        monitor.note_flush(7)
        assert monitor.checks == 1
        assert monitor.violations == 0

    def test_flush_after_force_is_fine(self):
        monitor = WALInvariantMonitor()
        monitor.note_recovery_data(7, "token")
        monitor.note_force("token")
        monitor.note_flush(7)
        assert monitor.violations == 0
        assert monitor.pending_pages == 0

    def test_unforced_flush_raises_when_strict(self):
        monitor = WALInvariantMonitor(strict=True)
        monitor.note_recovery_data(7, "token")
        with pytest.raises(WALViolation):
            monitor.note_flush(7)
        assert monitor.violations == 1

    def test_unforced_flush_counts_when_lenient(self):
        monitor = WALInvariantMonitor(strict=False)
        monitor.note_recovery_data(7, "token")
        monitor.note_flush(7)
        monitor.note_flush(7)
        assert monitor.violations == 2

    def test_token_shared_by_pages_retires_everywhere(self):
        monitor = WALInvariantMonitor()
        monitor.note_recovery_data(1, "shared")
        monitor.note_recovery_data(2, "shared")
        assert monitor.pending_pages == 2
        monitor.note_force("shared")
        monitor.note_flush(1)
        monitor.note_flush(2)
        assert monitor.violations == 0

    def test_reset_drops_pending_tokens(self):
        monitor = WALInvariantMonitor()
        monitor.note_recovery_data(3, "gone-at-crash")
        monitor.reset()
        monitor.note_flush(3)
        assert monitor.violations == 0

    def test_unknown_force_is_harmless(self):
        monitor = WALInvariantMonitor()
        monitor.note_force("never-registered")
        assert monitor.forces == 1


def logging_run(wal_monitor, mode=LogMode.LOGICAL, n_lps=2):
    config = MachineConfig()
    txns = generate_transactions(
        WorkloadConfig(n_transactions=6, max_pages=60),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    arch = ParallelLoggingArchitecture(
        LoggingConfig(n_log_processors=n_lps, mode=mode)
    )
    machine = DatabaseMachine(config, arch, wal_monitor=wal_monitor)
    return machine.run(txns)


class TestTimedMachine:
    def test_logical_logging_run_is_checked(self, wal_monitor):
        result = logging_run(wal_monitor)
        assert wal_monitor.checks > 0
        assert wal_monitor.checks == result.counter("data_pages_written")
        assert wal_monitor.violations == 0

    def test_physical_logging_run_is_checked(self, wal_monitor):
        logging_run(wal_monitor, mode=LogMode.PHYSICAL, n_lps=1)
        assert wal_monitor.checks > 0
        assert wal_monitor.violations == 0

    def test_monitored_run_matches_unmonitored(self, wal_monitor):
        monitored = logging_run(wal_monitor)
        plain = logging_run(None)
        assert monitored.execution_time_per_page == plain.execution_time_per_page


class TestFunctionalEngine:
    def test_steal_commit_crash_cycle_is_checked(self, wal_monitor):
        manager = DistributedWalManager(n_logs=3, monitor=wal_monitor)
        rng = RandomStreams(5).stream("history")
        for _ in range(10):
            tid = manager.begin()
            for page in rng.sample(range(16), 4):
                manager.write(tid, page, bytes([rng.randrange(256)]) * 4)
            # Steal a dirty page mid-transaction: the forced-logs-first
            # path inside flush_page must satisfy the monitor.
            manager.flush_page(next(iter(manager.dirty_pages)))
            manager.commit(tid)
        manager.flush_all()
        assert wal_monitor.checks > 0
        assert wal_monitor.violations == 0
        manager.crash()
        manager.recover()
        assert wal_monitor.pending_pages == 0

    def test_checkpoint_and_dump_retire_tokens(self, wal_monitor):
        manager = DistributedWalManager(n_logs=2, monitor=wal_monitor)
        tid = manager.begin()
        manager.write(tid, 1, b"a")
        manager.write(tid, 2, b"b")
        manager.checkpoint()
        assert wal_monitor.pending_pages == 0
        manager.commit(tid)
        manager.dump()
        assert wal_monitor.violations == 0
