"""Unit tests for the span recorder (repro.trace.recorder)."""

import pytest

from repro.trace import CATALOGUE, PHASE_CHARS, PRIORITY, Span, Tracer
from repro.trace.names import OTHER_PHASE


class Clock:
    """Stands in for the simulation Environment: just a settable `.now`."""

    def __init__(self):
        self.now = 0.0


def make_tracer():
    clock = Clock()
    return Tracer(env=clock), clock


class TestCatalogue:
    def test_priority_names_are_registered(self):
        assert set(PRIORITY) <= CATALOGUE

    def test_phase_chars_cover_priorities_plus_other(self):
        assert set(PHASE_CHARS) == set(PRIORITY) | {OTHER_PHASE}

    def test_phase_chars_are_unique(self):
        chars = list(PHASE_CHARS.values())
        assert len(chars) == len(set(chars))

    def test_txn_root_never_claims_time(self):
        assert "txn" in CATALOGUE and "txn" not in PRIORITY


class TestTracer:
    def test_begin_end_records_interval(self):
        tracer, clock = make_tracer()
        span = tracer.begin("qp.exec", tid=1, page=7)
        clock.now = 5.0
        tracer.end(span)
        assert span.closed
        assert span.duration == 5.0
        assert span.args == {"page": 7}

    def test_unregistered_name_rejected(self):
        tracer, _ = make_tracer()
        with pytest.raises(ValueError):
            tracer.begin("made.up.name")  # reprolint: disable-line=TRACE01
        with pytest.raises(ValueError):
            tracer.instant("made.up.name")  # reprolint: disable-line=TRACE01

    def test_double_end_rejected(self):
        tracer, _ = make_tracer()
        span = tracer.begin("commit")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)

    def test_tid_inherited_from_parent(self):
        tracer, _ = make_tracer()
        root = tracer.begin("txn", tid=3)
        child = tracer.begin("lock.wait", parent=root)
        assert child.tid == 3
        assert child.parent_sid == root.sid

    def test_explicit_tid_beats_parent(self):
        tracer, _ = make_tracer()
        root = tracer.begin("txn", tid=3)
        child = tracer.begin("writeback", parent=root, tid=9)
        assert child.tid == 9

    def test_seq_is_strictly_monotonic_across_kinds(self):
        tracer, _ = make_tracer()
        seqs = [
            tracer.begin("txn").seq,
            tracer.instant("fault.point", hook="x").seq,
            tracer.begin("commit").seq,
        ]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3

    def test_end_merges_args(self):
        tracer, _ = make_tracer()
        span = tracer.begin("txn", attempt=1)
        tracer.end(span, status="committed")
        assert span.args == {"attempt": 1, "status": "committed"}

    def test_instant_is_zero_duration(self):
        tracer, clock = make_tracer()
        clock.now = 4.0
        mark = tracer.instant("machine.crash", reason="test")
        assert mark.start == mark.end == 4.0
        assert mark.duration == 0.0

    def test_open_span_duration_is_zero(self):
        tracer, clock = make_tracer()
        span = tracer.begin("qp.wait")
        clock.now = 10.0
        assert not span.closed
        assert span.duration == 0.0


class TestQueries:
    def build(self):
        tracer, clock = make_tracer()
        a = tracer.begin("txn", tid=1)
        b = tracer.begin("qp.exec", parent=a)
        clock.now = 2.0
        tracer.end(b)
        tracer.end(a)
        tracer.begin("txn", tid=2)  # never ended: crash victim
        return tracer

    def test_spans_of_returns_closed_spans_for_tid(self):
        tracer = self.build()
        assert [s.name for s in tracer.spans_of(1)] == ["txn", "qp.exec"]
        assert tracer.spans_of(2) == []

    def test_named_filters_by_name(self):
        tracer = self.build()
        assert [s.tid for s in tracer.named("qp.exec")] == [1]

    def test_open_spans_survive_a_crash_cut(self):
        tracer = self.build()
        assert [s.tid for s in tracer.open_spans()] == [2]

    def test_len_counts_spans_and_instants(self):
        tracer = self.build()
        tracer.instant("fault.point", hook="h")
        assert len(tracer) == 4
