"""Unit tests for the page-level lock manager."""

import pytest

from repro.machine import DeadlockAbort, LockManager, LockMode
from repro.sim import Environment


@pytest.fixture
def locks():
    return LockManager(Environment())


class TestBasicLocking:
    def test_immediate_grant(self, locks):
        event = locks.acquire(1, 100, LockMode.S)
        assert event.triggered
        assert locks.holds(1, 100)

    def test_shared_locks_compatible(self, locks):
        assert locks.acquire(1, 100, LockMode.S).triggered
        assert locks.acquire(2, 100, LockMode.S).triggered

    def test_exclusive_blocks_shared(self, locks):
        assert locks.acquire(1, 100, LockMode.X).triggered
        assert not locks.acquire(2, 100, LockMode.S).triggered

    def test_shared_blocks_exclusive(self, locks):
        assert locks.acquire(1, 100, LockMode.S).triggered
        assert not locks.acquire(2, 100, LockMode.X).triggered

    def test_reentrant_same_mode(self, locks):
        locks.acquire(1, 100, LockMode.X)
        assert locks.acquire(1, 100, LockMode.X).triggered
        assert locks.acquire(1, 100, LockMode.S).triggered  # weaker: ok

    def test_release_grants_waiter(self, locks):
        locks.acquire(1, 100, LockMode.X)
        waiting = locks.acquire(2, 100, LockMode.X)
        assert not waiting.triggered
        locks.release_all(1)
        assert waiting.triggered
        assert locks.holds(2, 100, LockMode.X)

    def test_fifo_no_barging(self, locks):
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 100, LockMode.X)  # queued
        late_shared = locks.acquire(3, 100, LockMode.S)
        assert not late_shared.triggered  # must not jump the queue
        locks.release_all(1)
        assert locks.holds(2, 100)
        assert not late_shared.triggered

    def test_release_all_clears_everything(self, locks):
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(1, 200, LockMode.S)
        locks.release_all(1)
        assert not locks.holds(1, 100)
        assert not locks.holds(1, 200)

    def test_release_drops_queued_requests_of_tid(self, locks):
        locks.acquire(1, 100, LockMode.X)
        queued = locks.acquire(2, 100, LockMode.X)
        locks.release_all(2)  # txn 2 gives up while waiting
        locks.release_all(1)
        assert not queued.triggered  # its request evaporated

    def test_multiple_shared_waiters_granted_together(self, locks):
        locks.acquire(1, 100, LockMode.X)
        s2 = locks.acquire(2, 100, LockMode.S)
        s3 = locks.acquire(3, 100, LockMode.S)
        locks.release_all(1)
        assert s2.triggered and s3.triggered


class TestUpgrades:
    def test_sole_holder_upgrades_instantly(self, locks):
        locks.acquire(1, 100, LockMode.S)
        assert locks.acquire(1, 100, LockMode.X).triggered
        assert locks.holds(1, 100, LockMode.X)

    def test_upgrade_waits_for_other_readers(self, locks):
        locks.acquire(1, 100, LockMode.S)
        locks.acquire(2, 100, LockMode.S)
        upgrade = locks.acquire(1, 100, LockMode.X)
        assert not upgrade.triggered
        locks.release_all(2)
        assert upgrade.triggered
        assert locks.holds(1, 100, LockMode.X)


class TestDeadlock:
    def test_two_transaction_cycle_detected(self, locks):
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 200, LockMode.X)
        blocked = locks.acquire(1, 200, LockMode.X)
        assert not blocked.triggered
        victim = locks.acquire(2, 100, LockMode.X)
        assert victim.triggered and not victim.ok
        assert isinstance(victim.value, DeadlockAbort)
        assert victim.value.tid == 2
        victim.defuse()

    def test_three_transaction_cycle_detected(self, locks):
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 200, LockMode.X)
        locks.acquire(3, 300, LockMode.X)
        locks.acquire(1, 200, LockMode.X)
        locks.acquire(2, 300, LockMode.X)
        victim = locks.acquire(3, 100, LockMode.X)
        assert victim.triggered and not victim.ok
        victim.value and victim.defuse()
        assert locks.deadlocks.count == 1

    def test_no_false_positives_on_chains(self, locks):
        locks.acquire(1, 100, LockMode.X)
        a = locks.acquire(2, 100, LockMode.X)
        b = locks.acquire(3, 100, LockMode.X)
        assert not a.triggered and not b.triggered
        assert locks.deadlocks.count == 0

    def test_victim_requests_evaporate_and_cycle_breaks(self, locks):
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 200, LockMode.X)
        locks.acquire(1, 200, LockMode.X)  # 1 waits on 2
        victim = locks.acquire(2, 100, LockMode.X)  # cycle: 2 aborted
        victim.defuse()
        locks.release_all(2)
        # 1's wait resolves once 2 releases.
        assert locks.holds(1, 200, LockMode.X)

    def test_counters(self, locks):
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 100, LockMode.X)
        assert locks.grants.count == 1
        assert locks.blocks.count == 1
