"""Tests for the open-system arrival processes (repro.loadgen.arrivals)."""

import math

import pytest

from repro.loadgen.arrivals import ArrivalConfig, Spike, generate_arrivals
from repro.sim.rng import RandomStreams


def schedule(**kwargs):
    seed = kwargs.pop("seed", 1985)
    return generate_arrivals(
        ArrivalConfig(**kwargs), RandomStreams(seed).fork("arrivals")
    )


class TestPoisson:
    def test_interarrival_mean_matches_rate(self):
        # 400 samples at 10 tps: the mean inter-arrival should sit near
        # 100 ms (standard error ~5 ms; the fixed seed pins the draw).
        sched = schedule(process="poisson", rate_tps=10.0, n_arrivals=400)
        gaps = sched.interarrivals_ms()
        mean = sum(gaps) / len(gaps)
        assert 85.0 <= mean <= 115.0

    def test_interarrival_cv_is_exponential(self):
        # Exponential inter-arrivals have CV = 1.
        sched = schedule(process="poisson", rate_tps=10.0, n_arrivals=400)
        gaps = sched.interarrivals_ms()
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        cv = math.sqrt(var) / mean
        assert 0.8 <= cv <= 1.2

    def test_times_strictly_ordered_and_positive(self):
        sched = schedule(process="poisson", n_arrivals=100)
        assert all(t > 0 for t in sched.times_ms)
        assert list(sched.times_ms) == sorted(sched.times_ms)


class TestBursty:
    def test_arrivals_confined_to_on_windows(self):
        sched = schedule(process="bursty", rate_tps=8.0, n_arrivals=200)
        assert sched.on_windows_ms
        for t in sched.times_ms:
            assert any(start <= t <= end for start, end in sched.on_windows_ms)

    def test_duty_cycle_matches_config(self):
        # Equal on/off means: about half the elapsed time should be ON.
        sched = schedule(
            process="bursty",
            rate_tps=8.0,
            n_arrivals=300,
            burst_on_ms=400.0,
            burst_off_ms=400.0,
        )
        span = sched.times_ms[-1]
        on_time = sum(
            max(0.0, min(end, span) - start)
            for start, end in sched.on_windows_ms
            if start < span
        )
        assert 0.35 <= on_time / span <= 0.65

    def test_long_run_rate_preserved(self):
        # The ON-state rate is scaled by (on+off)/on, so the long-run
        # offered rate stays near rate_tps despite the silent gaps.
        sched = schedule(process="bursty", rate_tps=8.0, n_arrivals=400)
        rate = 1000.0 * sched.offered / sched.times_ms[-1]
        assert 6.0 <= rate <= 10.0


class TestDiurnal:
    def test_profile_integral_preserves_rate(self):
        # The sinusoid integrates to zero over a full period, so over
        # many periods the empirical rate matches rate_tps.
        sched = schedule(
            process="diurnal",
            rate_tps=10.0,
            n_arrivals=500,
            diurnal_period_ms=5_000.0,
            diurnal_amplitude=0.8,
        )
        rate = 1000.0 * sched.offered / sched.times_ms[-1]
        assert 8.0 <= rate <= 12.0

    def test_first_half_period_busier_than_second(self):
        # sin is positive on the first half-period, negative on the
        # second: arrivals concentrate in the rising half.
        period = 10_000.0
        sched = schedule(
            process="diurnal",
            rate_tps=10.0,
            n_arrivals=500,
            diurnal_period_ms=period,
            diurnal_amplitude=0.8,
        )
        first = sum(1 for t in sched.times_ms if (t % period) < period / 2)
        second = sched.offered - first
        assert first > 1.5 * second


class TestSpikesAndClients:
    def test_spike_window_concentrates_arrivals(self):
        spike = Spike(start_ms=1_000.0, duration_ms=1_000.0, multiplier=6.0)
        sched = schedule(
            process="poisson", rate_tps=4.0, n_arrivals=300, spikes=(spike,)
        )
        in_window = sum(1 for t in sched.times_ms if spike.covers(t))
        span = sched.times_ms[-1]
        base_expectation = 300 * spike.duration_ms / span
        assert in_window > 2.0 * base_expectation
        assert sched.spike_starts_ms == (1_000.0,)

    def test_client_pacing_enforces_think_gaps(self):
        sched = schedule(
            process="poisson",
            rate_tps=50.0,
            n_arrivals=60,
            n_clients=3,
            think_time_ms=200.0,
        )
        assert len(sched.clients) == 60
        assert set(sched.clients) <= {0, 1, 2}
        # Sorted overall, and the pacing stretches the schedule well
        # beyond what 50 tps alone would produce.
        assert list(sched.times_ms) == sorted(sched.times_ms)
        unpaced = schedule(process="poisson", rate_tps=50.0, n_arrivals=60)
        assert sched.times_ms[-1] > unpaced.times_ms[-1]


class TestDeterminism:
    @pytest.mark.parametrize("process", ["poisson", "bursty", "diurnal"])
    def test_same_seed_same_schedule(self, process):
        a = schedule(process=process, n_arrivals=80, seed=7)
        b = schedule(process=process, n_arrivals=80, seed=7)
        assert a.times_ms == b.times_ms
        assert a.on_windows_ms == b.on_windows_ms

    def test_different_seed_different_schedule(self):
        a = schedule(process="poisson", n_arrivals=80, seed=7)
        b = schedule(process="poisson", n_arrivals=80, seed=8)
        assert a.times_ms != b.times_ms

    def test_processes_draw_distinct_streams(self):
        # Each process owns a named stream; schedules differ by process.
        a = schedule(process="poisson", n_arrivals=40)
        b = schedule(process="diurnal", n_arrivals=40, diurnal_amplitude=0.0)
        # amplitude 0 makes diurnal a homogeneous Poisson too, but the
        # draws come from a different named stream.
        assert a.times_ms != b.times_ms


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"process": "lunar"},
            {"rate_tps": 0.0},
            {"n_arrivals": 0},
            {"burst_on_ms": 0.0},
            {"diurnal_amplitude": 1.0},
            {"n_clients": 0},
            {"think_time_ms": -1.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ArrivalConfig(**kwargs)

    def test_bad_spike_rejected(self):
        with pytest.raises(ValueError):
            Spike(start_ms=-1.0, duration_ms=10.0)
        with pytest.raises(ValueError):
            Spike(start_ms=0.0, duration_ms=10.0, multiplier=0.0)
