"""Unit tests for metrics containers and table rendering."""

import pytest

from repro.metrics import RunResult, format_table, percentile_table, render_comparison


class TestRunResult:
    def make(self, **kwargs):
        defaults = dict(
            architecture="bare",
            makespan_ms=1000.0,
            pages_processed=100,
            mean_completion_ms=50.0,
        )
        defaults.update(kwargs)
        return RunResult(**defaults)

    def test_execution_time_per_page(self):
        assert self.make().execution_time_per_page == pytest.approx(10.0)

    def test_zero_pages_guard(self):
        assert self.make(pages_processed=0).execution_time_per_page == 0.0

    def test_lookup_helpers_default_to_zero(self):
        result = self.make()
        assert result.utilization("nonexistent") == 0.0
        assert result.counter("nonexistent") == 0

    def test_summary_contains_key_fields(self):
        result = self.make(utilizations={"qp": 0.5})
        text = result.summary()
        assert "10.00 ms" in text
        assert "util[qp] : 0.50" in text

    def test_restarts_shown_when_present(self):
        assert "(2 restarts)" in self.make(n_restarts=2, n_transactions=5).summary()

    def test_percentiles_default_empty(self):
        result = self.make()
        assert result.completion_percentiles == {}
        assert "percentiles" not in result.summary()

    def test_percentiles_in_summary(self):
        result = self.make(
            completion_percentiles={"p50": 40.0, "p95": 90.0, "p99": 120.0}
        )
        text = result.summary()
        assert "p50=40.0 ms" in text
        assert "p95=90.0 ms" in text
        assert "p99=120.0 ms" in text


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_floats_formatted(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestPercentileTable:
    def make(self, p50, p95, p99, mean):
        return RunResult(
            architecture="x",
            makespan_ms=1.0,
            pages_processed=1,
            mean_completion_ms=mean,
            completion_percentiles={"p50": p50, "p95": p95, "p99": p99},
        )

    def test_rows_and_headers(self):
        text = percentile_table(
            {
                "logging": self.make(40.0, 90.0, 120.0, 50.0),
                "shadow-pt": self.make(60.0, 110.0, 150.0, 70.0),
            },
            title="tails",
        )
        lines = text.splitlines()
        assert lines[0] == "tails"
        assert "p99 (ms)" in lines[2]
        assert any("logging" in line and "120.00" in line for line in lines)
        assert any("shadow-pt" in line and "150.00" in line for line in lines)

    def test_missing_percentiles_render_zero(self):
        result = RunResult(
            architecture="x",
            makespan_ms=1.0,
            pages_processed=1,
            mean_completion_ms=0.0,
        )
        text = percentile_table({"bare": result})
        assert "0.0" in text


class TestRenderComparison:
    def test_ratio_column(self):
        text = render_comparison({"case": 20.0}, {"case": 10.0})
        assert "2.00" in text

    def test_missing_paper_value_leaves_blank_ratio(self):
        text = render_comparison({"only-measured": 5.0}, {})
        assert "only-measured" in text

    def test_paper_only_key_included(self):
        text = render_comparison({}, {"only-paper": 5.0})
        assert "only-paper" in text
