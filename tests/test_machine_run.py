"""Integration tests: full machine runs on small workloads."""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import (
    BareArchitecture,
    DifferentialFileArchitecture,
    OverwritingArchitecture,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
    VersionSelectionArchitecture,
)
from repro.sim import RandomStreams
from repro.workload import TransactionStatus


def small_run(arch=None, parallel=False, sequential=False, n=6, max_pages=60, **over):
    config = MachineConfig(parallel_data_disks=parallel, **over)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=max_pages, sequential=sequential),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    machine = DatabaseMachine(config, arch)
    return machine.run(txns), txns


class TestBareMachineRun:
    def test_all_transactions_commit(self):
        result, txns = small_run()
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert result.n_transactions == len(txns)

    def test_pages_processed_matches_workload(self):
        result, txns = small_run()
        assert result.pages_processed == sum(t.pages_processed for t in txns)

    def test_every_read_hits_a_disk(self):
        result, txns = small_run()
        assert result.counter("data_pages_read") == sum(t.n_reads for t in txns)

    def test_every_update_is_written_back(self):
        result, txns = small_run()
        assert result.counter("data_pages_written") == sum(t.n_writes for t in txns)

    def test_completion_times_recorded(self):
        result, txns = small_run()
        for txn in txns:
            assert txn.completion_time is not None
            assert txn.completion_time > 0
        assert result.mean_completion_ms > 0

    def test_finish_is_last_durable_write_for_updaters(self):
        _result, txns = small_run()
        for txn in txns:
            if txn.write_pages:
                assert txn.finish_time == txn.last_durable_write

    def test_deterministic_given_seed(self):
        r1, _ = small_run()
        r2, _ = small_run()
        assert r1.makespan_ms == r2.makespan_ms
        assert r1.mean_completion_ms == r2.mean_completion_ms

    def test_seed_changes_run(self):
        r1, _ = small_run()
        r2, _ = small_run(seed=2024)
        assert r1.makespan_ms != r2.makespan_ms

    def test_cache_frames_all_returned(self):
        config = MachineConfig()
        txns = generate_transactions(
            WorkloadConfig(n_transactions=4, max_pages=50),
            config.db_pages,
            RandomStreams(11).stream("workload"),
        )
        machine = DatabaseMachine(config, None)
        machine.run(txns)
        assert machine.cache.free == config.cache_frames

    def test_locks_all_released(self):
        config = MachineConfig()
        txns = generate_transactions(
            WorkloadConfig(n_transactions=4, max_pages=50),
            config.db_pages,
            RandomStreams(11).stream("workload"),
        )
        machine = DatabaseMachine(config, None)
        machine.run(txns)
        assert machine.locks._table == {}

    def test_empty_load_rejected(self):
        machine = DatabaseMachine(MachineConfig(), None)
        with pytest.raises(ValueError):
            machine.run([])

    def test_utilizations_in_range(self):
        result, _ = small_run()
        for name, value in result.utilizations.items():
            assert 0.0 <= value <= 1.0 + 1e-9, name


class TestConflictingWorkloads:
    def test_conflicting_transactions_still_all_commit(self):
        """Force heavy page contention: everything fits in 200 pages."""
        config = MachineConfig(mpl=4)
        rng = RandomStreams(13).stream("workload")
        from repro.workload import Transaction

        txns = []
        for tid in range(8):
            reads = tuple(rng.sample(range(200), 30))
            writes = frozenset(rng.sample(reads, 6))
            txns.append(Transaction(tid=tid, read_pages=reads, write_pages=writes))
        machine = DatabaseMachine(config, None)
        result = machine.run(txns)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert result.counter("lock_blocks") > 0  # contention actually happened

    def test_deadlock_victims_restart_and_commit(self):
        """Reverse-order hot pages provoke deadlocks; victims must retry."""
        config = MachineConfig(mpl=4)
        from repro.workload import Transaction

        hot = list(range(10))
        txns = []
        for tid in range(6):
            reads = tuple(hot if tid % 2 == 0 else reversed(hot))
            txns.append(
                Transaction(tid=tid, read_pages=reads, write_pages=frozenset(reads))
            )
        machine = DatabaseMachine(config, None)
        result = machine.run(txns)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        # With opposite lock orders at mpl 4, at least one abort is expected.
        assert result.n_restarts >= 1


class TestArchitecturesIntegration:
    @pytest.mark.parametrize(
        "factory",
        [
            BareArchitecture,
            ParallelLoggingArchitecture,
            PageTableShadowArchitecture,
            OverwritingArchitecture,
            DifferentialFileArchitecture,
        ],
        ids=["bare", "logging", "shadow", "overwriting", "differential"],
    )
    @pytest.mark.parametrize("parallel", [False, True], ids=["conv", "par"])
    def test_runs_clean_and_commits(self, factory, parallel):
        result, txns = small_run(factory(), parallel=parallel)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert result.execution_time_per_page > 0

    def test_version_selection_needs_half_database(self):
        result, txns = small_run(VersionSelectionArchitecture(), db_pages=60_000)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)

    def test_architecture_name_in_result(self):
        result, _ = small_run(ParallelLoggingArchitecture())
        assert "logging" in result.architecture

    def test_run_result_summary_renders(self):
        result, _ = small_run()
        text = result.summary()
        assert "execution time / page" in text
        assert "bare" in text
