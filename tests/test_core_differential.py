"""Unit tests for the differential-file architecture."""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import DifferentialConfig, DifferentialFileArchitecture
from repro.core.base import AuxRead, DataPage
from repro.sim import RandomStreams
from repro.workload import Transaction, TransactionStatus


def make_machine(diff_config=None, **over):
    config = MachineConfig(**over)
    arch = DifferentialFileArchitecture(diff_config or DifferentialConfig())
    return DatabaseMachine(config, arch), arch


def small_run(diff_config=None, n=5, max_pages=50, sequential=False, **over):
    machine, arch = make_machine(diff_config, **over)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=max_pages, sequential=sequential),
        machine.config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    return machine.run(txns), txns, arch


class TestDifferentialConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DifferentialConfig(size_fraction=0.0)
        with pytest.raises(ValueError):
            DifferentialConfig(output_fraction=1.5)
        with pytest.raises(ValueError):
            DifferentialConfig(qualify_fraction=-0.1)

    def test_with_overrides(self):
        config = DifferentialConfig().with_overrides(size_fraction=0.2)
        assert config.size_fraction == 0.2
        assert config.optimal


class TestReadSequence:
    def test_interleaves_a_and_d_reads(self):
        machine, arch = make_machine()
        txn = Transaction(
            tid=0, read_pages=tuple(range(100)), write_pages=frozenset()
        )
        items = list(arch.read_sequence(txn))
        data = [i for i in items if isinstance(i, DataPage)]
        a_files = [i for i in items if isinstance(i, AuxRead) and i.tag == "a-file"]
        d_files = [i for i in items if isinstance(i, AuxRead) and i.tag == "d-file"]
        assert len(data) == 100
        assert len(a_files) == 10  # size_fraction * N
        assert len(d_files) == 10

    def test_small_transactions_have_no_diff_reads(self):
        machine, arch = make_machine()
        txn = Transaction(tid=0, read_pages=tuple(range(5)), write_pages=frozenset())
        items = list(arch.read_sequence(txn))
        assert all(isinstance(i, DataPage) for i in items)

    def test_a_pages_carry_set_difference_cpu(self):
        machine, arch = make_machine()
        txn = Transaction(
            tid=0, read_pages=tuple(range(100)), write_pages=frozenset()
        )
        a_item = next(
            i
            for i in arch.read_sequence(txn)
            if isinstance(i, AuxRead) and i.tag == "a-file"
        )
        assert a_item.cpu_ms > 0

    def test_larger_size_fraction_more_diff_reads(self):
        machine, arch = make_machine(DifferentialConfig(size_fraction=0.2))
        txn = Transaction(
            tid=0, read_pages=tuple(range(100)), write_pages=frozenset()
        )
        a_files = [
            i
            for i in arch.read_sequence(txn)
            if isinstance(i, AuxRead) and i.tag == "a-file"
        ]
        assert len(a_files) == 20


class TestCpuModel:
    def test_basic_costs_more_than_optimal(self):
        machine_b, arch_b = make_machine(DifferentialConfig(optimal=False))
        machine_o, arch_o = make_machine(DifferentialConfig(optimal=True))
        txn = Transaction(
            tid=0, read_pages=tuple(range(100)), write_pages=frozenset()
        )
        assert arch_b.page_cpu_ms(txn, 0, False) > arch_o.page_cpu_ms(txn, 0, False)

    def test_diff_cpu_scales_with_transaction_size(self):
        machine, arch = make_machine()
        small = Transaction(tid=0, read_pages=tuple(range(20)), write_pages=frozenset())
        large = Transaction(tid=1, read_pages=tuple(range(200)), write_pages=frozenset())
        assert arch.page_cpu_ms(large, 0, False) > arch.page_cpu_ms(small, 0, False)


class TestAppends:
    def test_appended_pages_round_up(self):
        machine, arch = make_machine()
        txn = Transaction(
            tid=0,
            read_pages=tuple(range(50)),
            write_pages=frozenset(range(10)),
        )
        # ceil(10 * 0.1) = 1 A page + 1 D page.
        assert arch.appended_pages_for(txn) == 2

    def test_read_only_transaction_appends_nothing(self):
        machine, arch = make_machine()
        txn = Transaction(tid=0, read_pages=(1, 2), write_pages=frozenset())
        assert arch.appended_pages_for(txn) == 0

    def test_output_fraction_scales_appends(self):
        machine, arch = make_machine(DifferentialConfig(output_fraction=0.5))
        txn = Transaction(
            tid=0,
            read_pages=tuple(range(50)),
            write_pages=frozenset(range(10)),
        )
        assert arch.appended_pages_for(txn) == 5 + 1


class TestIntegration:
    def test_no_in_place_writebacks(self):
        result, txns, _ = small_run()
        # Data pages written = appended A/D pages only, not one per update.
        appends = result.counter("pages_appended")
        assert result.counter("data_pages_written") == appends
        assert appends < sum(t.n_writes for t in txns) + 2 * len(txns)

    def test_diff_files_reduce_written_pages(self):
        """The paper: differential files write *fewer* updated pages."""
        result, txns, _ = small_run(n=6, max_pages=100)
        assert result.counter("data_pages_written") < sum(t.n_writes for t in txns)

    def test_extra_reads_counted(self):
        result, txns, _ = small_run(n=6, max_pages=100)
        assert result.counter("a_pages_read") > 0
        assert result.counter("a_pages_read") == result.counter("d_pages_read")

    def test_all_commit(self):
        result, txns, _ = small_run()
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)

    def test_needs_reserved_cylinders(self):
        config = MachineConfig(reserved_cylinders=2, db_pages=100_000)
        with pytest.raises(ValueError):
            DatabaseMachine(config, DifferentialFileArchitecture())

    def test_describe(self):
        arch = DifferentialFileArchitecture(
            DifferentialConfig(optimal=False, size_fraction=0.15)
        )
        text = arch.describe()
        assert "basic" in text and "15%" in text
