"""Tests for the measured-vs-paper report generator."""

import pytest

from repro.cli import main
from repro.experiments import ExperimentSettings
from repro.experiments.report import ALL_TABLES, generate_report

TINY = ExperimentSettings(n_transactions=4)


class TestGenerateReport:
    def test_registry_covers_all_twelve_tables(self):
        assert [number for number, _f, _d in ALL_TABLES] == list(range(1, 13))

    def test_single_table_report(self):
        text = generate_report(TINY, tables=[2])
        assert "## Table 2" in text
        assert "## Table 1" not in text
        assert "Paper reference values:" in text

    def test_report_mentions_settings(self):
        text = generate_report(TINY, tables=[2])
        assert "4 transactions per run" in text

    def test_multiple_tables_in_order(self):
        text = generate_report(TINY, tables=[7, 2])
        assert text.index("## Table 2") < text.index("## Table 7")


class TestCliReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "-n", "4", "-t", "2"]) == 0
        out = capsys.readouterr().out
        assert "# Measured-vs-paper report" in out
        assert "Table 2" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "-n", "4", "-t", "2", "-o", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "## Table 2" in path.read_text()

    def test_repeatable_table_flag(self, capsys):
        assert main(["report", "-n", "4", "-t", "2", "-t", "8"]) == 0
        out = capsys.readouterr().out
        assert "## Table 2" in out and "## Table 8" in out
