"""The lint CFG builder: edge sets, dominators, and the block partition.

Each control shape the builder claims to handle gets a test asserting the
*actual edges* (by the statements each block holds, not block numbers, so
the tests survive builder refactors), plus a property test over every
function in the real ``src/repro`` tree: each reachable statement appears
in exactly one basic block.
"""

import ast
from pathlib import Path

import pytest

from repro.lint.cfg import build_cfg, dominators, statements_of

REPO_ROOT = Path(__file__).resolve().parent.parent


def cfg_of(source):
    func = ast.parse(source).body[0]
    return build_cfg(func)


def label(block):
    """A readable identity for a block: the source lines of its elements."""
    if block.kind != "code":
        return block.kind
    return tuple(e.lineno for e in block.elements)


def edges(cfg):
    """{label: set of successor labels} for non-empty reachable blocks."""
    out = {}
    for block in cfg.reachable():
        if block.kind != "code" or not block.elements:
            continue  # virtual exits and structural glue blocks
        succs = set()
        stack = list(block.succs)
        seen = set()
        while stack:
            succ = stack.pop()
            if succ.bid in seen:
                continue
            seen.add(succ.bid)
            if succ.kind == "code" and not succ.elements:
                stack.extend(succ.succs)  # look through glue blocks
            else:
                succs.add(label(succ))
        out[label(block)] = succs
    return out


def block_of_line(cfg, lineno):
    for block in cfg.blocks:
        if any(getattr(e, "lineno", None) == lineno for e in block.elements):
            return block
    raise AssertionError(f"no block holds line {lineno}")


def dominates(cfg, dom_line, sub_line):
    dom = dominators(cfg)
    dominator = block_of_line(cfg, dom_line)
    subject = block_of_line(cfg, sub_line)
    return dominator.bid in dom[subject.bid]


class TestBranchShapes:
    SOURCE = """\
def f(x):
    a = 1
    if x:
        b = 2
    else:
        c = 3
    d = 4
"""

    def test_edges(self):
        cfg = cfg_of(self.SOURCE)
        # Line 2+3 start the entry run (the if-test joins the straight line);
        # both arms flow to the join.
        assert edges(cfg) == {
            (2, 3): {(4,), (6,)},
            (4,): {(7,)},
            (6,): {(7,)},
            (7,): {"exit"},
        }

    def test_dominators(self):
        cfg = cfg_of(self.SOURCE)
        assert dominates(cfg, 2, 7)  # straight-line code dominates the join
        assert not dominates(cfg, 4, 7)  # one arm does not
        assert not dominates(cfg, 6, 7)

    def test_elif_chain_has_fallthrough_exit(self):
        cfg = cfg_of(
            """\
def f(x):
    if x == 1:
        return 1
    elif x == 2:
        return 2
"""
        )
        # Falling through both tests reaches the normal exit directly.
        assert edges(cfg)[(4,)] == {(5,), "exit"}


class TestLoopShapes:
    SOURCE = """\
def f(items):
    for item in items:
        if item:
            continue
        use(item)
    done()
"""

    def test_edges(self):
        cfg = cfg_of(self.SOURCE)
        assert edges(cfg) == {
            (2,): {(3,), (6,)},  # next item or exhausted
            (3,): {(4,), (5,)},
            (4,): {(2,)},  # continue: back to the head
            (5,): {(2,)},  # body end: back to the head
            (6,): {"exit"},
        }

    def test_loop_head_dominates_body_not_vice_versa(self):
        cfg = cfg_of(self.SOURCE)
        assert dominates(cfg, 2, 5)
        assert not dominates(cfg, 5, 6)  # zero-iteration path skips the body

    def test_while_true_exits_only_via_break(self):
        cfg = cfg_of(
            """\
def f():
    while True:
        if ready():
            break
        step()
    after()
"""
        )
        e = edges(cfg)
        assert e[(2,)] == {(3,)}  # no false exit edge from a literal-True test
        assert e[(4,)] == {(6,)}  # break lands after the loop

    def test_break_skips_loop_else(self):
        cfg = cfg_of(
            """\
def f(items):
    for item in items:
        if item:
            break
    else:
        none_found()
    after()
"""
        )
        e = edges(cfg)
        assert e[(4,)] == {(7,)}  # break: straight to after, not the else
        assert e[(2,)] == {(3,), (6,)}  # exhaustion: into the else


class TestTryShapes:
    def test_try_except_edges(self):
        cfg = cfg_of(
            """\
def f():
    try:
        risky()
    except ValueError:
        handle()
    after()
"""
        )
        e = edges(cfg)
        # The body may raise into the handler or complete to the join;
        # the handler entry holds the exception-type test (line 4).
        assert e[(3,)] == {(4, 5), (6,)}
        assert e[(4, 5)] == {(6,)}

    def test_finally_on_all_routes(self):
        cfg = cfg_of(
            """\
def f(x):
    try:
        if x:
            return early()
        work()
    finally:
        cleanup()
    after()
"""
        )
        e = edges(cfg)
        # Both the early return and normal completion pass through cleanup.
        assert e[(4,)] == {(7,)}
        assert e[(5,)] == {(7,)}
        # The shared finally fans out: fall-through join, the parked
        # return, and the may-raise propagation.
        assert e[(7,)] == {(8,), "exit", "raise"}

    def test_finally_dominates_exit(self):
        cfg = cfg_of(
            """\
def f(x):
    try:
        if x:
            return early()
        work()
    finally:
        cleanup()
    after()
"""
        )
        assert dominates(cfg, 7, 8)  # cleanup dominates everything after

    def test_uncaught_raise_reaches_raise_exit(self):
        cfg = cfg_of(
            """\
def f():
    a = 1
    raise RuntimeError(a)
"""
        )
        assert edges(cfg)[(2, 3)] == {"raise"}
        # The normal exit is unreachable: nothing flows into it.
        assert not any(
            succs == {"exit"} or "exit" in succs for succs in edges(cfg).values()
        )

    def test_raise_caught_by_enclosing_handler(self):
        cfg = cfg_of(
            """\
def f():
    try:
        raise ValueError()
    except ValueError:
        recover()
    after()
"""
        )
        e = edges(cfg)
        assert e[(3,)] == {(4, 5)}  # into the handler, never to raise-exit


class TestWithShape:
    def test_with_is_transparent(self):
        cfg = cfg_of(
            """\
def f(path):
    with open(path) as handle:
        data = handle.read()
    use(data)
"""
        )
        # Context expression and body run as one straight line.
        assert edges(cfg) == {(2, 3, 4): {"exit"}}

    def test_with_body_branches_normally(self):
        cfg = cfg_of(
            """\
def f(path, flag):
    with open(path) as handle:
        if flag:
            return handle.read()
    return None
"""
        )
        assert edges(cfg)[(2, 3)] == {(4,), (5,)}
        assert edges(cfg)[(4,)] == {"exit"}


class TestBlockPartitionProperty:
    """Every reachable statement appears in exactly one basic block."""

    def _assert_partition(self, func, where):
        cfg = build_cfg(func)
        counts = {}
        for block in cfg.blocks:
            for element in block.elements:
                counts[id(element)] = counts.get(id(element), 0) + 1
        dup = [node_id for node_id, n in counts.items() if n > 1]
        assert not dup, f"{where}:{func.name}: statements in multiple blocks"
        for stmt in statements_of(func):
            # Compound statements contribute their test/iter expressions,
            # not themselves; bare try/with contribute nothing directly.
            if isinstance(
                stmt,
                (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try, ast.With, ast.AsyncWith),
            ):
                continue
            assert id(stmt) in counts, (
                f"{where}:{func.name}: line {stmt.lineno} "
                f"({type(stmt).__name__}) missing from every block"
            )

    def test_repo_tree(self):
        src = REPO_ROOT / "src" / "repro"
        checked = 0
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._assert_partition(node, path.name)
                    checked += 1
        assert checked > 100, "the property test should cover the whole tree"

    def test_synthetic_torture(self):
        source = """\
def f(items, flag):
    total = 0
    for item in items:
        try:
            if flag:
                continue
            elif item < 0:
                break
            total += item
        except ValueError:
            total -= 1
        finally:
            log(item)
    else:
        total = -total
    while flag:
        with lock():
            flag = step(flag)
            if not flag:
                return total
    raise RuntimeError(total)
"""
        self._assert_partition(ast.parse(source).body[0], "<torture>")
