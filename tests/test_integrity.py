"""Unit tests for the ``repro.integrity`` primitives.

Checksums, the canonical byte form, the torn-tail stop rule, and the
deterministic tamper helpers — the detection half of docs/INTEGRITY.md.
"""

from typing import NamedTuple

import pytest

from repro.integrity import (
    IntegrityError,
    PageIntegrityError,
    RecordIntegrityError,
    canonical_bytes,
    page_checksum,
    record_checksum,
    split_torn_tail,
    tamper_bytes,
    tamper_record,
)


class TestCanonicalBytes:
    def test_scalars_round_trip_distinctly(self):
        values = [None, True, False, 0, 1, -7, 1.0, 0.5, "", "a", b"", b"a"]
        encoded = [canonical_bytes(v) for v in values]
        assert len(set(encoded)) == len(values)

    def test_type_tagged_across_equal_values(self):
        # 1 == 1.0 == True in Python; their byte forms must differ.
        assert canonical_bytes(1) != canonical_bytes(1.0)
        assert canonical_bytes(1) != canonical_bytes(True)
        assert canonical_bytes(0) != canonical_bytes(False)

    def test_nesting_and_sequences(self):
        assert canonical_bytes((1, "x")) == canonical_bytes([1, "x"])
        assert canonical_bytes(((1,), 2)) != canonical_bytes((1, (2,)))
        assert canonical_bytes(()) == b"()"

    def test_string_length_prefix_prevents_ambiguity(self):
        assert canonical_bytes(("ab", "c")) != canonical_bytes(("a", "bc"))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes({"a": 1})

    def test_deterministic(self):
        record = (1, "op", (2.5, None, b"\x00\xff"), True)
        assert canonical_bytes(record) == canonical_bytes(record)


class TestChecksums:
    def test_page_checksum_detects_a_flip(self):
        data = b"page image bytes"
        assert page_checksum(data) != page_checksum(tamper_bytes(data))

    def test_record_checksum_detects_a_tamper(self):
        record = (7, "write", 3, b"abc")
        assert record_checksum(record) != record_checksum(tamper_record(record))

    def test_checksums_fit_uint32(self):
        for value in (b"", b"x" * 1000):
            assert 0 <= page_checksum(value) < 2**32


class TestSplitTornTail:
    def test_clean_log(self):
        assert split_torn_tail([True, True, True]) == (3, None)

    def test_empty_log(self):
        assert split_torn_tail([]) == (0, None)

    def test_corrupt_suffix_is_a_tear(self):
        assert split_torn_tail([True, True, False]) == (2, None)
        assert split_torn_tail([True, False, False]) == (1, None)
        assert split_torn_tail([False, False]) == (0, None)

    def test_interior_corruption_is_rot(self):
        keep, interior = split_torn_tail([True, False, True])
        assert keep == 3
        assert interior == 1

    def test_interior_wins_over_tail(self):
        # Rot at 0, clean at 1, tear at 2-3: the prefix of length 2 still
        # contains the rot, which must surface before any truncation.
        keep, interior = split_torn_tail([False, True, False, False])
        assert keep == 2
        assert interior == 0


class TestTamper:
    def test_tamper_bytes_changes_exactly_one_byte(self):
        data = b"abcdef"
        tampered = tamper_bytes(data, 2)
        assert len(tampered) == len(data)
        assert sum(a != b for a, b in zip(data, tampered)) == 1

    def test_tamper_bytes_empty_never_noop(self):
        assert tamper_bytes(b"") != b""

    def test_tamper_bytes_position_wraps(self):
        assert tamper_bytes(b"ab", 5) == tamper_bytes(b"ab", 1)

    def test_tamper_record_keeps_tuple_shape(self):
        record = (1, "op", 2.0)
        tampered = tamper_record(record)
        assert isinstance(tampered, tuple)
        assert len(tampered) == len(record)
        assert tampered != record

    def test_tamper_record_namedtuple_keeps_type(self):
        class Rec(NamedTuple):
            tid: int
            kind: str

        tampered = tamper_record(Rec(3, "commit"))
        assert isinstance(tampered, Rec)
        assert tampered != Rec(3, "commit")

    def test_tamper_record_scalars_change(self):
        for value in (0, 1, True, False, 1.5, "abc", "", b"xy", None):
            assert tamper_record(value) != value

    def test_tamper_is_deterministic(self):
        record = (1, ["a", "b"], None)
        assert tamper_record(record) == tamper_record(record)


class TestErrorTypes:
    def test_hierarchy(self):
        assert issubclass(PageIntegrityError, IntegrityError)
        assert issubclass(RecordIntegrityError, IntegrityError)

    def test_page_error_carries_location(self):
        error = PageIntegrityError(42)
        assert error.page == 42
        assert "42" in str(error)

    def test_record_error_carries_location(self):
        error = RecordIntegrityError("log", 7)
        assert (error.file, error.index) == ("log", 7)
        assert "log[7]" in str(error)
