"""Detect-and-repair: ``repair_corruption()`` across every manager.

The functional half of the scrub story (docs/INTEGRITY.md): a corrupt
archive is rebuilt from the intact online image, a corrupt page or
record is restored in place from its provably-original archive copy,
unprovable damage escalates to full media recovery, and corruption on
both sides at once raises instead of guessing.
"""

import pytest

from repro.registry import ARCHITECTURES
from repro.storage.archive import ARCHIVE_FILES, ARCHIVE_PAGES
from repro.storage.errors import RecoveryStateError
from repro.storage.repair import repair_stats, split_corruption

ARCHS = sorted(ARCHITECTURES)


def make_dumped(arch):
    """A manager with two committed pages and a current archive dump."""
    manager = ARCHITECTURES[arch]()
    tid = manager.begin()
    manager.write(tid, 1, b"alpha")
    manager.write(tid, 2, b"beta")
    manager.commit(tid)
    manager.dump()
    if hasattr(manager, "archive_append"):
        manager.archive_append()
    return manager


def first_stable_page(manager):
    pages = sorted(manager.stable.pages)
    return pages[0] if pages else None


class TestHelpers:
    def test_repair_stats_shape(self):
        assert repair_stats() == {
            "pages_repaired": 0,
            "records_repaired": 0,
            "archives_rebuilt": 0,
            "escalations": 0,
        }

    def test_split_corruption(self):
        report = {
            "pages": [3, 1],
            "files": {"log": [0], "archive_pages": [2], "tlist": [1]},
        }
        pages, archive, online = split_corruption(
            report, ("archive_pages", "archive_files")
        )
        assert pages == [3, 1]
        assert archive == ["archive_pages"]
        assert online == ["log", "tlist"]


@pytest.mark.parametrize("arch", ARCHS)
class TestRepairCorruption:
    def test_clean_store_is_a_noop(self, arch):
        manager = make_dumped(arch)
        assert manager.repair_corruption() == repair_stats()

    def test_corrupt_page_repaired_in_place(self, arch):
        manager = make_dumped(arch)
        page = first_stable_page(manager)
        if page is None:
            pytest.skip(f"{arch}: no stable data pages in this layout")
        before = dict(manager.stable.pages)
        manager.stable.corrupt_page(page)
        stats = manager.repair_corruption()
        assert stats["pages_repaired"] == 1
        assert stats["escalations"] == 0
        assert manager.stable.scrub() == {"pages": [], "files": {}}
        assert manager.stable.pages == before
        assert manager.read_committed(1) == b"alpha"

    def test_corrupt_record_repaired_in_place(self, arch):
        manager = make_dumped(arch)
        target = next(
            (
                name
                for name in manager.stable.files()
                if name not in (ARCHIVE_PAGES, ARCHIVE_FILES, "archive_log")
                and manager.stable.file_length(name) > 0
            ),
            None,
        )
        if target is None:
            pytest.skip(f"{arch}: no non-empty online files")
        manager.stable.corrupt_record(target, 0)
        stats = manager.repair_corruption()
        assert stats["records_repaired"] >= 1 or stats["escalations"] == 1
        assert manager.stable.scrub() == {"pages": [], "files": {}}
        assert manager.read_committed(1) == b"alpha"

    def test_corrupt_archive_rebuilt_from_online(self, arch):
        manager = make_dumped(arch)
        archive = next(
            name
            for name in (ARCHIVE_PAGES, "archive_log", ARCHIVE_FILES)
            if manager.stable.file_length(name) > 0
        )
        manager.stable.corrupt_record(archive, 0)
        stats = manager.repair_corruption()
        assert stats["archives_rebuilt"] == 1
        assert manager.stable.scrub() == {"pages": [], "files": {}}
        assert manager.read_committed(1) == b"alpha"

    def test_both_sides_corrupt_raises(self, arch):
        manager = make_dumped(arch)
        page = first_stable_page(manager)
        archive = next(
            name
            for name in (ARCHIVE_PAGES, "archive_log", ARCHIVE_FILES)
            if manager.stable.file_length(name) > 0
        )
        manager.stable.corrupt_record(archive, 0)
        if page is not None:
            manager.stable.corrupt_page(page)
        else:
            online = next(
                name
                for name in manager.stable.files()
                if name not in (ARCHIVE_PAGES, ARCHIVE_FILES, "archive_log")
                and manager.stable.file_length(name) > 0
            )
            manager.stable.corrupt_record(online, 0)
        with pytest.raises(RecoveryStateError):
            manager.repair_corruption()


class TestEscalation:
    def test_stale_archive_copy_escalates(self):
        # Commit past the dump, then rot the rewritten page: the archive
        # copy no longer matches the envelope, so targeted repair must
        # escalate to full media recovery instead of restoring stale bits.
        manager = ARCHITECTURES["shadow"]()
        tid = manager.begin()
        manager.write(tid, 1, b"old")
        manager.commit(tid)
        manager.dump()
        tid = manager.begin()
        manager.write(tid, 1, b"new")
        manager.commit(tid)
        target = next(
            page
            for page in sorted(manager.stable.pages)
            if manager.stable.pages[page] == b"new"
            or not manager.stable.page_matches(
                page, manager.stable.pages[page]
            )
        )
        manager.stable.corrupt_page(target)
        stats = manager.repair_corruption()
        assert stats["escalations"] == 1
        assert manager.stable.scrub() == {"pages": [], "files": {}}
        # Media recovery rolls back to the dump point (no log to roll
        # forward with in the shadow architecture).
        assert manager.read_committed(1) == b"old"

    def test_wal_escalation_loses_nothing(self):
        # The WAL manager's escalation replays the archive log: a commit
        # made *after* the dump survives the full media-recovery path —
        # the roll-forward advantage over the no-log architectures.
        manager = ARCHITECTURES["wal"]()
        tid = manager.begin()
        manager.write(tid, 1, b"old")
        manager.commit(tid)
        manager.dump()
        tid = manager.begin()
        manager.write(tid, 1, b"new")
        manager.commit(tid)
        manager.flush_all()
        manager.archive_append()
        archived = {
            page: data
            for page, data, _seq in manager.stable.read_file("archive_pages")
        }
        # Rot a page whose archive copy is stale (rewritten post-dump):
        # targeted repair cannot prove the candidate, so it escalates.
        stale = next(
            page
            for page in sorted(manager.stable.pages)
            if not manager.stable.page_matches(
                page, archived.get(page, b"\x00missing")
            )
        )
        manager.stable.corrupt_page(stale)
        stats = manager.repair_corruption()
        assert stats["escalations"] == 1
        assert manager.stable.scrub() == {"pages": [], "files": {}}
        assert manager.read_committed(1) == b"new"


class TestWalGuards:
    def test_repair_without_dump_raises_on_damage(self):
        manager = ARCHITECTURES["wal"]()
        tid = manager.begin()
        manager.write(tid, 1, b"alpha")
        manager.commit(tid)
        manager.flush_all()
        page = sorted(manager.stable.pages)[0]
        manager.stable.corrupt_page(page)
        with pytest.raises(RecoveryStateError):
            manager.repair_corruption()
