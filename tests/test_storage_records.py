"""Unit + property tests for the record codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import RecordCodecError, decode_record, encode_record


class TestCodecBasics:
    @pytest.mark.parametrize(
        "row",
        [
            (),
            (1,),
            ("alice", 100),
            (None, True, False),
            (3.14, -2.5e300),
            (b"\x00\xff", "unicode ✓", 0),
            (-(2**62), 2**62),
            (2**100, -(2**100)),  # bigints beyond 64 bits
        ],
    )
    def test_round_trip(self, row):
        assert decode_record(encode_record(row)) == row

    def test_bool_is_not_int_after_round_trip(self):
        decoded = decode_record(encode_record((True, 1)))
        assert decoded[0] is True
        assert decoded[1] == 1 and decoded[1] is not True

    def test_unsupported_type_rejected(self):
        with pytest.raises(RecordCodecError):
            encode_record(([1, 2],))

    def test_corrupt_bytes_rejected(self):
        raw = encode_record(("ok", 1))
        with pytest.raises(RecordCodecError):
            decode_record(raw[:-1])

    def test_trailing_garbage_rejected(self):
        raw = encode_record((1,))
        with pytest.raises(RecordCodecError):
            decode_record(raw + b"junk")

    def test_unknown_tag_rejected(self):
        raw = bytearray(encode_record((1,)))
        raw[2] = ord("?")
        with pytest.raises(RecordCodecError):
            decode_record(bytes(raw))


FIELD = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)


class TestCodecProperties:
    @settings(max_examples=100)
    @given(st.lists(FIELD, max_size=10).map(tuple))
    def test_round_trip_any_row(self, row):
        assert decode_record(encode_record(row)) == row

    @settings(max_examples=50)
    @given(st.lists(FIELD, max_size=10).map(tuple))
    def test_encoding_is_deterministic(self, row):
        assert encode_record(row) == encode_record(row)
