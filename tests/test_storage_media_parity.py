"""Media-recovery parity: every manager survives losing its data disks.

The WAL manager has dump + archive-log roll-forward (covered in
test_storage_media_recovery.py); the other four get the dump-only
counterpart from :class:`ArchiveDumpMixin`.  These tests pin the shared
surface — same method names, same restart discipline, same ``media.*``
fault points — and the dump-only semantics: committed work *after* the
last dump rolls back, because a no-log architecture has nothing to roll
forward with.
"""

import pytest

from repro.faults import (
    ARCHITECTURES,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    make_manager,
)
from repro.storage import ArchiveDumpMixin
from repro.storage.errors import RecoveryStateError

MIXIN_ARCHS = ["shadow", "versions", "overwrite", "differential"]


@pytest.fixture(params=MIXIN_ARCHS)
def manager(request):
    return make_manager(request.param)


def committed_write(manager, page, data):
    tid = manager.begin()
    manager.write(tid, page, data)
    manager.commit(tid)


class TestUniformSurface:
    def test_every_architecture_has_media_recovery(self):
        for arch in sorted(ARCHITECTURES):
            mgr = make_manager(arch)
            assert callable(mgr.dump)
            assert callable(mgr.recover_from_media_failure)

    def test_mixin_archs_use_the_dump_only_scheme(self):
        for arch in MIXIN_ARCHS:
            assert isinstance(make_manager(arch), ArchiveDumpMixin)

    def test_restore_without_dump_rejected(self, manager):
        committed_write(manager, 1, b"one")
        with pytest.raises(RecoveryStateError):
            manager.recover_from_media_failure()


class TestDumpRestore:
    def test_dump_then_restore_round_trips(self, manager):
        committed_write(manager, 1, b"one")
        committed_write(manager, 2, b"two")
        stats = manager.dump()
        # Differential keeps tuples in files, the rest in pages; either
        # way the snapshot must be non-empty.
        assert stats["pages"] + stats["files"] >= 1
        manager.recover_from_media_failure()
        assert manager.read_committed(1) == b"one"
        assert manager.read_committed(2) == b"two"

    def test_work_after_dump_rolls_back(self, manager):
        """The defining cost of no-log media recovery (paper Section 5)."""
        committed_write(manager, 1, b"archived")
        manager.dump()
        committed_write(manager, 1, b"lost")
        committed_write(manager, 3, b"also-lost")
        manager.recover_from_media_failure()
        assert manager.read_committed(1) == b"archived"
        assert manager.read_committed(3) == b""

    def test_uncommitted_at_dump_time_erased(self, manager):
        committed_write(manager, 1, b"good")
        tid = manager.begin()
        manager.write(tid, 1, b"dirty")
        manager.dump()
        manager.recover_from_media_failure()
        assert manager.read_committed(1) == b"good"

    def test_redump_overwrites_older_archive(self, manager):
        committed_write(manager, 1, b"v1")
        manager.dump()
        committed_write(manager, 1, b"v2")
        manager.dump()
        manager.recover_from_media_failure()
        assert manager.read_committed(1) == b"v2"

    def test_normal_operation_continues_after_restore(self, manager):
        committed_write(manager, 1, b"one")
        manager.dump()
        manager.recover_from_media_failure()
        committed_write(manager, 2, b"after")
        manager.crash()
        manager.recover()
        assert manager.read_committed(1) == b"one"
        assert manager.read_committed(2) == b"after"

    def test_survivors_can_begin_fresh_after_restore(self, manager):
        """Restore is a restart: the lock table must come back empty."""
        committed_write(manager, 1, b"one")
        tid = manager.begin()
        manager.write(tid, 1, b"in-flight")
        manager.dump()
        manager.recover_from_media_failure()
        replacement = manager.begin()
        manager.write(replacement, 1, b"retry")  # stale lock would conflict
        manager.commit(replacement)
        assert manager.read_committed(1) == b"retry"


class TestCrashDuringRestore:
    @pytest.mark.parametrize("arch", MIXIN_ARCHS + ["wal"])
    def test_restore_converges_after_mid_restore_crash(self, arch):
        manager = make_manager(arch)
        committed_write(manager, 1, b"one")
        committed_write(manager, 2, b"two")
        manager.dump()
        injector = FaultInjector(
            FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="media.restore.*"), seed=1)
        )
        manager.set_fault_callback(injector.reached)
        with pytest.raises(InjectedCrash):
            manager.recover_from_media_failure()
        manager.set_fault_callback(None)
        manager.crash()
        manager.recover_from_media_failure()  # the archive is still intact
        assert manager.read_committed(1) == b"one"
        assert manager.read_committed(2) == b"two"

    @pytest.mark.parametrize("arch", MIXIN_ARCHS + ["wal"])
    def test_dump_fault_points_cross(self, arch):
        manager = make_manager(arch)
        committed_write(manager, 1, b"one")
        crossed = []
        manager.set_fault_callback(crossed.append)
        manager.dump()
        manager.set_fault_callback(None)
        assert any(name.startswith("media.dump.") for name in crossed)
