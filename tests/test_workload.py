"""Unit tests for the workload model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    Transaction,
    TransactionStatus,
    WorkloadConfig,
    generate_transactions,
)


class TestTransaction:
    def test_write_set_must_be_subset(self):
        with pytest.raises(ValueError):
            Transaction(tid=1, read_pages=(1, 2), write_pages=frozenset({3}))

    def test_pages_processed(self):
        txn = Transaction(tid=1, read_pages=(1, 2, 3), write_pages=frozenset({2}))
        assert txn.pages_processed == 4

    def test_completion_time(self):
        txn = Transaction(tid=1, read_pages=(1,), write_pages=frozenset())
        assert txn.completion_time is None
        txn.start_time = 10.0
        txn.finish_time = 35.0
        assert txn.completion_time == 25.0

    def test_reset_runtime(self):
        txn = Transaction(tid=1, read_pages=(1,), write_pages=frozenset())
        txn.status = TransactionStatus.ABORTED
        txn.recovery_state["x"] = 1
        txn.reset_runtime()
        assert txn.status is TransactionStatus.PENDING
        assert txn.recovery_state == {}


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_transactions=0)
        with pytest.raises(ValueError):
            WorkloadConfig(min_pages=0)
        with pytest.raises(ValueError):
            WorkloadConfig(min_pages=10, max_pages=5)
        with pytest.raises(ValueError):
            WorkloadConfig(write_fraction=1.5)

    def test_with_overrides(self):
        config = WorkloadConfig().with_overrides(sequential=True)
        assert config.sequential
        assert config.n_transactions == WorkloadConfig().n_transactions


class TestGenerator:
    def test_deterministic(self):
        config = WorkloadConfig(n_transactions=5)
        a = generate_transactions(config, 10_000, random.Random(1))
        b = generate_transactions(config, 10_000, random.Random(1))
        assert [t.read_pages for t in a] == [t.read_pages for t in b]

    def test_page_counts_in_range(self):
        config = WorkloadConfig(n_transactions=50, min_pages=1, max_pages=250)
        txns = generate_transactions(config, 10_000, random.Random(2))
        assert all(1 <= t.n_reads <= 250 for t in txns)

    def test_write_fraction_honoured(self):
        config = WorkloadConfig(n_transactions=50, write_fraction=0.2)
        txns = generate_transactions(config, 10_000, random.Random(3))
        for txn in txns:
            assert txn.n_writes == round(0.2 * txn.n_reads)
            assert txn.write_pages <= set(txn.read_pages)

    def test_sequential_reference_strings_are_runs(self):
        config = WorkloadConfig(n_transactions=20, sequential=True)
        txns = generate_transactions(config, 10_000, random.Random(4))
        for txn in txns:
            pages = txn.read_pages
            assert pages == tuple(range(pages[0], pages[0] + len(pages)))

    def test_random_reference_strings_are_distinct_pages(self):
        config = WorkloadConfig(n_transactions=20)
        txns = generate_transactions(config, 10_000, random.Random(5))
        for txn in txns:
            assert len(set(txn.read_pages)) == len(txn.read_pages)

    def test_sequential_stays_in_database(self):
        config = WorkloadConfig(n_transactions=100, sequential=True, max_pages=250)
        txns = generate_transactions(config, 300, random.Random(6))
        for txn in txns:
            assert txn.read_pages[-1] < 300

    def test_database_too_small_rejected(self):
        config = WorkloadConfig(max_pages=250)
        with pytest.raises(ValueError):
            generate_transactions(config, 100, random.Random(0))

    def test_zero_write_fraction(self):
        config = WorkloadConfig(n_transactions=10, write_fraction=0.0)
        txns = generate_transactions(config, 10_000, random.Random(7))
        assert all(t.n_writes == 0 for t in txns)

    @settings(max_examples=30)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        write_fraction=st.floats(min_value=0.0, max_value=1.0),
        sequential=st.booleans(),
    )
    def test_invariants_hold_for_any_seed(self, seed, write_fraction, sequential):
        config = WorkloadConfig(
            n_transactions=5, write_fraction=write_fraction, sequential=sequential
        )
        txns = generate_transactions(config, 5_000, random.Random(seed))
        for txn in txns:
            assert 1 <= txn.n_reads <= 250
            assert txn.write_pages <= set(txn.read_pages)
            assert all(0 <= p < 5_000 for p in txn.read_pages)

    def test_page_size_distribution_roughly_uniform(self):
        config = WorkloadConfig(n_transactions=400)
        txns = generate_transactions(config, 10_000, random.Random(8))
        mean = sum(t.n_reads for t in txns) / len(txns)
        assert 110 < mean < 140  # E[U(1,250)] = 125.5
