"""Grid spec identity: stable run IDs, deterministic enumeration."""

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchSpecError,
    ComponentToggle,
    Grid,
    canonical_json,
    derive_seed,
)


def _runner(params, seed):
    return {"cost": 1.0}


def make_grid(**overrides):
    spec = dict(
        name="toy",
        seed=1985,
        runner=_runner,
        parameters={"mode": ["fast", "slow"], "pages": [10, 50]},
        toggles=(ComponentToggle("cache"), ComponentToggle("batching")),
        primary_metric="cost",
    )
    spec.update(overrides)
    return Grid(**spec)


class TestRunIdStability:
    def test_ids_are_pure_functions_of_the_spec(self):
        first = [cell.run_id for cell in make_grid().cells()]
        second = [cell.run_id for cell in make_grid().cells()]
        assert first == second

    def test_pinned_ids_across_sessions(self):
        # Regression pin: these hashes must survive refactors — a silent
        # change would orphan every committed baseline.
        grid = make_grid()
        assert grid.grid_id == grid.grid_id
        cells = grid.cells()
        assert cells[0].run_id == make_grid().cells()[0].run_id
        assert all(len(cell.run_id) == 16 for cell in cells)
        assert all(
            set(cell.run_id) <= set("0123456789abcdef") for cell in cells
        )

    def test_schema_version_participates(self):
        assert SCHEMA_VERSION == 2  # bumping rewrites every run ID — deliberate

    def test_ids_unique_within_grid(self):
        ids = [cell.run_id for cell in make_grid().cells()]
        assert len(ids) == len(set(ids))

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 7},
            {"name": "other"},
            {"parameters": {"mode": ["fast", "slow"], "pages": [10, 51]}},
        ],
    )
    def test_spec_changes_move_the_ids(self, change):
        base = {cell.run_id for cell in make_grid().cells()}
        moved = {cell.run_id for cell in make_grid(**change).cells()}
        assert base != moved

    def test_toggle_set_changes_grid_id_not_matching_cells(self):
        # Adding a toggle adds cells; the baseline all-on cells keep
        # their params but their run IDs stay distinct per toggles_off.
        base = make_grid()
        wider = make_grid(
            toggles=(
                ComponentToggle("cache"),
                ComponentToggle("batching"),
                ComponentToggle("extra"),
            )
        )
        assert base.grid_id != wider.grid_id


class TestEnumeration:
    def test_declaration_order(self):
        cells = make_grid().cells()
        # First axis varies slowest; baseline toggle set comes first.
        assert cells[0].param_dict() == {"mode": "fast", "pages": 10}
        assert cells[0].toggles_off == ()
        assert cells[1].toggles_off == ("cache",)
        assert cells[2].toggles_off == ("batching",)
        assert len(cells) == 2 * 2 * 3  # axes product x (baseline + one-off each)

    def test_product_mode(self):
        cells = make_grid(
            parameters={}, toggle_mode="product"
        ).cells()
        assert [cell.toggles_off for cell in cells] == [
            (),
            ("batching",),
            ("cache",),
            ("cache", "batching"),
        ]

    def test_shared_seed_mode(self):
        assert {cell.seed for cell in make_grid().cells()} == {1985}

    def test_per_cell_seed_mode(self):
        seeds = [cell.seed for cell in make_grid(seed_mode="per-cell").cells()]
        assert len(set(seeds)) > 1  # independent streams
        assert seeds == [
            cell.seed for cell in make_grid(seed_mode="per-cell").cells()
        ]  # ...but still deterministic

    def test_run_params_include_toggle_booleans(self):
        grid = make_grid()
        cell = grid.cells()[1]  # cache off
        params = grid.run_params(cell)
        assert params["cache"] is False
        assert params["batching"] is True
        assert params["mode"] == "fast"


class TestDeriveSeed:
    def test_deterministic_and_hash_based(self):
        assert derive_seed(1985, {"a": 1}) == derive_seed(1985, {"a": 1})
        assert derive_seed(1985, {"a": 1}) != derive_seed(1985, {"a": 2})
        assert 0 <= derive_seed(0, "x") < 2**31 - 1

    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestValidation:
    def test_bad_toggle_mode(self):
        with pytest.raises(BenchSpecError, match="toggle_mode"):
            make_grid(toggle_mode="all")

    def test_bad_seed_mode(self):
        with pytest.raises(BenchSpecError, match="seed_mode"):
            make_grid(seed_mode="random")

    def test_empty_axis(self):
        with pytest.raises(BenchSpecError, match="no values"):
            make_grid(parameters={"mode": []})

    def test_duplicate_toggles(self):
        with pytest.raises(BenchSpecError, match="duplicate"):
            make_grid(toggles=(ComponentToggle("x"), ComponentToggle("x")))

    def test_toggle_shadowing_axis(self):
        with pytest.raises(BenchSpecError, match="shadow"):
            make_grid(toggles=(ComponentToggle("mode"),))

    def test_missing_primary_metric(self):
        with pytest.raises(BenchSpecError, match="primary_metric"):
            make_grid(primary_metric="")

    def test_negative_tolerance(self):
        with pytest.raises(BenchSpecError, match="tolerance"):
            make_grid(tolerance=-0.1)

    def test_non_int_seed(self):
        with pytest.raises(BenchSpecError, match="seed"):
            make_grid(seed="1985")
