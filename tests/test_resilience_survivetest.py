"""Tests for the survivetest harness (degraded-mode survival sweep)."""

import json

import pytest

from repro.cli import main
from repro.resilience import (
    SCENARIO_KINDS,
    SurviveReport,
    run_media_scenario,
    run_survivetest,
)


@pytest.fixture(scope="module")
def shadow_report():
    """One full sweep, shared across assertions (the expensive bit)."""
    return run_survivetest("shadow", seed=1985, n_transactions=4)


class TestSurviveReport:
    def test_sweep_passes(self, shadow_report):
        assert shadow_report.ok
        for scenario in shadow_report.scenarios:
            assert scenario.violations == []

    def test_every_failure_kind_injected(self, shadow_report):
        kinds = {s.scenario for s in shadow_report.scenarios}
        # lp-fail only applies to the wal architecture.
        assert kinds == set(SCENARIO_KINDS) - {"lp-fail"}

    def test_availability_figures_in_range(self, shadow_report):
        availability = shadow_report.availability
        assert availability  # at least the qp scenario reports one
        for value in availability.values():
            assert 0.0 < value <= 1.0 + 1e-9

    def test_detection_within_bound(self, shadow_report):
        for scenario in shadow_report.scenarios:
            details = scenario.details
            if "detection_latency_ms" in details:
                assert details["detection_latency_ms"] <= details["detection_bound_ms"]

    def test_json_round_trips(self, shadow_report):
        data = json.loads(shadow_report.to_json())
        assert data["architecture"] == "shadow"
        assert data["ok"] is True
        assert len(data["scenarios"]) == len(shadow_report.scenarios)

    def test_sweep_is_deterministic(self, shadow_report):
        again = run_survivetest("shadow", seed=1985, n_transactions=4)
        assert again.to_json() == shadow_report.to_json()

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            run_survivetest("nonesuch")


class TestWalSweep:
    def test_wal_covers_lp_failover(self):
        report = run_survivetest("wal", seed=1985, n_transactions=4)
        assert report.ok
        kinds = {s.scenario for s in report.scenarios}
        assert "lp-fail" in kinds
        lp = next(s for s in report.scenarios if s.scenario == "lp-fail")
        assert lp.details["fragments_reshipped"] >= 0


class TestMediaScenario:
    @pytest.mark.parametrize("arch", ["wal", "shadow"])
    def test_media_restore_mid_workload(self, arch):
        outcome = run_media_scenario(arch, seed=7)
        assert outcome.ok, outcome.violations

    def test_crash_during_restore_converges(self):
        outcome = run_media_scenario("versions", seed=7, crash_during_restore=True)
        assert outcome.ok, outcome.violations


class TestSurvivetestCommand:
    def test_single_arch_and_json_report(self, capsys, tmp_path):
        path = tmp_path / "availability.json"
        assert main(["survivetest", "--arch", "overwrite", "-n", "4",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "overwrite" in out and "ok" in out
        data = json.loads(path.read_text())
        assert data["overwrite"]["ok"] is True
