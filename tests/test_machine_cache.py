"""Unit tests for the disk cache."""

import pytest

from repro.machine import DiskCache
from repro.sim import Environment, SimulationError


class TestDiskCache:
    def test_initially_all_free(self):
        cache = DiskCache(Environment(), 10)
        assert cache.free == 10
        assert cache.in_use == 0

    def test_acquire_release(self):
        env = Environment()
        cache = DiskCache(env, 10)

        def proc(env):
            yield cache.acquire(3)
            assert cache.free == 7
            cache.release(3)

        env.process(proc(env))
        env.run()
        assert cache.free == 10

    def test_acquire_blocks_when_exhausted(self):
        env = Environment()
        cache = DiskCache(env, 2)
        times = []

        def hog(env):
            yield cache.acquire(2)
            yield env.timeout(5)
            cache.release(2)

        def needy(env):
            yield env.timeout(1)
            yield cache.acquire(1)
            times.append(env.now)

        env.process(hog(env))
        env.process(needy(env))
        env.run()
        assert times == [5]

    def test_oversized_request_rejected(self):
        cache = DiskCache(Environment(), 4)
        with pytest.raises(SimulationError):
            cache.acquire(5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            DiskCache(Environment(), 0)

    def test_blocked_page_accounting(self):
        env = Environment()
        cache = DiskCache(env, 10)

        def proc(env):
            cache.mark_blocked(2)
            yield env.timeout(10)
            cache.unmark_blocked(2)
            yield env.timeout(10)

        env.process(proc(env))
        env.run()
        # 2 blocked for half the run.
        assert cache.mean_blocked(20) == pytest.approx(1.0)

    def test_mean_free_frames(self):
        env = Environment()
        cache = DiskCache(env, 10)

        def proc(env):
            yield cache.acquire(10)
            yield env.timeout(10)
            cache.release(10)
            yield env.timeout(10)

        env.process(proc(env))
        env.run()
        assert cache.mean_free(20) == pytest.approx(5.0)

    def test_allocations_counted(self):
        env = Environment()
        cache = DiskCache(env, 10)

        def proc(env):
            yield cache.acquire(4)
            cache.release(4)
            yield cache.acquire(1)
            cache.release(1)

        env.process(proc(env))
        env.run()
        assert cache.allocations.count == 5
