"""Unit tests for the shadow architectures (thru-PT, version selection,
overwriting)."""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import (
    OverwritingArchitecture,
    OverwritingMode,
    PageTableShadowArchitecture,
    ShadowConfig,
    VersionSelectionArchitecture,
)
from repro.core.shadow import PageTableSubsystem
from repro.hardware import IBM_3350
from repro.hardware.placement import ScrambledPlacement
from repro.sim import Environment, RandomStreams
from repro.workload import TransactionStatus


def make_pt(n_processors=1, buffer_pages=3, entries=100, db_pages=1000):
    env = Environment()
    subsystem = PageTableSubsystem(
        env,
        n_processors=n_processors,
        buffer_pages=buffer_pages,
        entries_per_page=entries,
        db_pages=db_pages,
        disk_params=IBM_3350,
        streams=RandomStreams(5),
    )
    return env, subsystem


def drive(env, generator):
    """Run a generator as a process to completion."""
    return env.run(until=env.process(generator))


class TestPageTableSubsystem:
    def test_pt_page_mapping(self):
        _, pt = make_pt(entries=100)
        assert pt.pt_page_of(0) == 0
        assert pt.pt_page_of(99) == 0
        assert pt.pt_page_of(100) == 1
        assert pt.n_pt_pages == 10

    def test_miss_then_hit(self):
        env, pt = make_pt()
        drive(env, pt.lookup(5))
        assert pt.misses.count == 1 and pt.reads.count == 1
        drive(env, pt.lookup(7))  # same PT page
        assert pt.hits.count == 1 and pt.reads.count == 1

    def test_lru_eviction(self):
        env, pt = make_pt(buffer_pages=2)
        drive(env, pt.lookup(0))      # pt page 0
        drive(env, pt.lookup(100))    # pt page 1
        drive(env, pt.lookup(200))    # pt page 2, evicts 0
        drive(env, pt.lookup(0))      # miss again
        assert pt.misses.count == 4

    def test_lru_order_updated_on_hit(self):
        env, pt = make_pt(buffer_pages=2)
        drive(env, pt.lookup(0))
        drive(env, pt.lookup(100))
        drive(env, pt.lookup(0))      # refresh page 0
        drive(env, pt.lookup(200))    # evicts page 1, not 0
        drive(env, pt.lookup(0))
        assert pt.hits.count == 2

    def test_update_entry_rereads_evicted_page(self):
        env, pt = make_pt(buffer_pages=1)
        drive(env, pt.lookup(0))
        drive(env, pt.lookup(100))    # evicts PT page 0
        drive(env, pt.update_entry(0))
        assert pt.rereads.count == 1

    def test_flush_writes_only_dirty(self):
        env, pt = make_pt()
        drive(env, pt.lookup(0))
        drive(env, pt.update_entry(0))
        events = pt.flush([0, 100])  # 100 never updated
        assert len(events) == 1
        env.run()
        assert pt.writes.count == 1

    def test_dirty_eviction_writes_back(self):
        env, pt = make_pt(buffer_pages=1)
        drive(env, pt.update_entry(0))   # dirty PT page 0
        drive(env, pt.lookup(100))       # evicts it -> write
        assert pt.writes.count == 1

    def test_pt_pages_striped_across_processors(self):
        _, pt = make_pt(n_processors=2)
        disk0, _ = pt._locate(0)
        disk1, _ = pt._locate(1)
        assert disk0 is not disk1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_pt(n_processors=0)
        with pytest.raises(ValueError):
            make_pt(buffer_pages=0)


def small_run(arch, sequential=False, parallel=False, n=5, max_pages=50, **over):
    config = MachineConfig(parallel_data_disks=parallel, **over)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=max_pages, sequential=sequential),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    machine = DatabaseMachine(config, arch)
    return machine.run(txns), txns, machine


class TestThruPageTableArchitecture:
    def test_pt_counters_present(self):
        result, txns, _ = small_run(PageTableShadowArchitecture(ShadowConfig()))
        assert result.counter("pt_reads") > 0
        assert "pt_disks" in result.utilizations

    def test_commit_updates_pt_entries_of_write_set(self):
        result, txns, _ = small_run(PageTableShadowArchitecture(ShadowConfig()))
        assert result.counter("pt_writes") > 0

    def test_scrambled_config_replaces_placement(self):
        _, _, machine = small_run(
            PageTableShadowArchitecture(ShadowConfig(clustered=False))
        )
        assert isinstance(machine.placement, ScrambledPlacement)

    def test_clustered_keeps_default_placement(self):
        _, _, machine = small_run(
            PageTableShadowArchitecture(ShadowConfig(clustered=True))
        )
        assert not isinstance(machine.placement, ScrambledPlacement)

    def test_describe(self):
        arch = PageTableShadowArchitecture(
            ShadowConfig(n_pt_processors=2, pt_buffer_pages=25, clustered=False)
        )
        text = arch.describe()
        assert "2 ptp" in text and "25" in text and "scrambled" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShadowConfig(n_pt_processors=0)
        with pytest.raises(ValueError):
            ShadowConfig(pt_buffer_pages=0)


class TestVersionSelection:
    def test_reads_fetch_two_blocks(self):
        result, txns, machine = small_run(
            VersionSelectionArchitecture(), db_pages=60_000
        )
        # Every logical read transfers two physical blocks from the disks.
        total_reads = sum(t.n_reads for t in txns)
        physical = sum(d.pages_read.count for d in machine.data_disks)
        assert physical == 2 * total_reads
        assert result.counter("data_pages_read") == total_reads

    def test_pair_blocks_adjacent_same_cylinder(self):
        config = MachineConfig(db_pages=60_000)
        machine = DatabaseMachine(config, VersionSelectionArchitecture())
        arch = machine.arch
        disk_idx, (first, second) = arch._pairs.pair(123)
        assert first.cylinder == second.cylinder
        assert abs(first.linear(IBM_3350) - second.linear(IBM_3350)) == 1

    def test_database_too_large_rejected(self):
        config = MachineConfig(db_pages=120_000)
        with pytest.raises(ValueError):
            DatabaseMachine(config, VersionSelectionArchitecture())

    def test_all_commit(self):
        result, txns, _ = small_run(VersionSelectionArchitecture(), db_pages=60_000)
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)


class TestOverwriting:
    def test_no_undo_scratch_traffic(self):
        result, txns, _ = small_run(OverwritingArchitecture(OverwritingMode.NO_UNDO))
        updates = sum(t.n_writes for t in txns)
        updaters = sum(1 for t in txns if t.n_writes)
        # one scratch write per update + one commit-record write per updater
        assert result.counter("scratch_writes") == updates + updaters
        assert result.counter("scratch_reads") == updates
        assert result.counter("data_pages_written") == updates

    def test_no_redo_writes_home_directly(self):
        result, txns, _ = small_run(OverwritingArchitecture(OverwritingMode.NO_REDO))
        updates = sum(t.n_writes for t in txns)
        updaters = sum(1 for t in txns if t.n_writes)
        assert result.counter("scratch_writes") == updates + updaters
        assert result.counter("scratch_reads") == 0
        assert result.counter("data_pages_written") == updates

    def test_no_undo_home_writes_happen_at_commit(self):
        """Under no-undo, a transaction's home writes all land at/after its
        commit point, never before."""
        result, txns, _ = small_run(OverwritingArchitecture(OverwritingMode.NO_UNDO))
        for txn in txns:
            if txn.write_pages:
                assert txn.last_durable_write is not None
                assert txn.finish_time == txn.last_durable_write

    def test_requires_reserved_cylinders(self):
        config = MachineConfig(reserved_cylinders=0, db_pages=100_000)
        with pytest.raises(ValueError):
            DatabaseMachine(config, OverwritingArchitecture())

    def test_describe(self):
        assert "no-undo" in OverwritingArchitecture().describe()
        assert (
            "no-redo"
            in OverwritingArchitecture(OverwritingMode.NO_REDO).describe()
        )
