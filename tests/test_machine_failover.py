"""Machine-level failover: permanent component failures mid-run.

Covers the degraded-mode survival paths: a query processor dying (its
in-flight transaction aborts through normal undo and restarts on the
survivors, its page locks are released), a log processor dying (orphaned
fragments re-ship, survivors take the stream over), and a mirrored data
disk losing one side (the twin serves, a replacement rebuilds).
"""

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import LoggingConfig, ParallelLoggingArchitecture
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.machine import DeadlockAbort, LockManager, LockMode
from repro.sim import Environment, RandomStreams
from repro.workload import Transaction, TransactionStatus


def build(arch=None, n=6, **over):
    config = MachineConfig(seed=4242, parallel_data_disks=True, **over)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=60),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    return DatabaseMachine(config, arch), txns


def run_with_fault(machine, txns, *specs):
    injector = FaultInjector(FaultPlan.of(*specs, seed=0))
    injector.arm(machine)
    return machine.run(txns)


class TestQueryProcessorFailover:
    def test_workload_survives_dead_qp(self):
        machine, txns = build()
        result = run_with_fault(
            machine, txns, FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=0)
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert result.counter("qp_failures") == 1
        assert machine.qps.alive_count == machine.config.n_query_processors - 1

    def test_dead_qp_releases_its_page_locks(self):
        machine, txns = build()
        run_with_fault(
            machine, txns, FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=0)
        )
        assert machine.locks._table == {}

    def test_repair_rejoins_the_pool(self):
        machine, txns = build()
        run_with_fault(
            machine,
            txns,
            FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=3, repair_after=200.0),
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert machine.qps.alive_count == machine.config.n_query_processors

    def test_failover_is_deterministic(self):
        makespans = []
        for _ in range(2):
            machine, txns = build()
            result = run_with_fault(
                machine, txns, FaultSpec(FaultKind.QP_FAIL, at_time=50.0, target=0)
            )
            makespans.append(result.makespan_ms)
        assert makespans[0] == makespans[1]


class TestLogProcessorFailover:
    def test_workload_survives_dead_lp(self):
        machine, txns = build(
            ParallelLoggingArchitecture(LoggingConfig(n_log_processors=3))
        )
        run_with_fault(
            machine, txns, FaultSpec(FaultKind.LP_FAIL, at_time=50.0, target=1)
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        mask = machine.arch.alive_mask()
        assert mask == [True, False, True]


class TestMirroredDiskFailover:
    def test_workload_survives_one_side_and_rebuilds(self):
        machine, txns = build(mirrored_data_disks=True)
        result = run_with_fault(
            machine,
            txns,
            FaultSpec(
                FaultKind.DISK_FAIL, at_time=50.0, target=0, repair_after=100.0
            ),
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert result.counter("mirror_lost_requests") == 0
        assert result.counter("mirror_fallback_reads") > 0


class TestDeadQpLockCleanup:
    """Satellite of the failover path: the lock manager's behaviour when a
    processor dies while its transaction holds page locks."""

    def make_locks(self):
        return LockManager(Environment())

    def test_release_all_frees_every_waiter_of_dead_holder(self):
        locks = self.make_locks()
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(1, 200, LockMode.X)
        w100 = locks.acquire(2, 100, LockMode.X)
        w200 = locks.acquire(3, 200, LockMode.S)
        locks.release_all(1)  # QP holding txn 1 died; undo released its locks
        assert w100.triggered and w200.triggered
        assert locks.holds(2, 100, LockMode.X)
        assert locks.holds(3, 200)

    def test_release_all_dissolves_wait_edges(self):
        locks = self.make_locks()
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 100, LockMode.X)
        assert locks.active_waiters == 1
        locks.release_all(1)
        assert locks.active_waiters == 0

    def test_dead_holder_breaks_a_brewing_cycle(self):
        locks = self.make_locks()
        locks.acquire(1, 100, LockMode.X)
        locks.acquire(2, 200, LockMode.X)
        blocked = locks.acquire(1, 200, LockMode.X)  # 1 waits on 2
        locks.release_all(1)  # 1's QP dies before 2 ever requests 100
        victim = locks.acquire(2, 100, LockMode.X)  # no cycle left
        assert victim.triggered and victim.ok
        assert not blocked.triggered  # the dead txn's request evaporated

    def test_victim_selection_is_deterministic(self):
        """The requester that closes the cycle is always the victim — the
        same interleaving names the same victim on every run."""
        victims = []
        for _ in range(3):
            locks = self.make_locks()
            locks.acquire(1, 100, LockMode.X)
            locks.acquire(2, 200, LockMode.X)
            locks.acquire(1, 200, LockMode.X)
            event = locks.acquire(2, 100, LockMode.X)
            assert isinstance(event.value, DeadlockAbort)
            victims.append((event.value.tid, event.value.cycle))
            event.defuse()
        assert victims[0] == victims[1] == victims[2]
        assert victims[0][0] == 2  # the closing requester

    def test_contended_run_with_dead_qp_ends_clean(self):
        """Hot-page contention plus a mid-run QP death: everything still
        commits and the lock table drains."""
        config = MachineConfig(mpl=4, seed=4242)
        rng = RandomStreams(13).stream("workload")
        txns = []
        for tid in range(8):
            reads = tuple(rng.sample(range(200), 30))
            writes = frozenset(rng.sample(reads, 6))
            txns.append(Transaction(tid=tid, read_pages=reads, write_pages=writes))
        machine = DatabaseMachine(config, None)
        result = run_with_fault(
            machine, txns, FaultSpec(FaultKind.QP_FAIL, at_time=100.0, target=0)
        )
        assert all(t.status is TransactionStatus.COMMITTED for t in txns)
        assert machine.locks._table == {}
        assert result.counter("qp_failures") == 1
