"""Tests for the offered-load sweep harness (repro.loadgen.loadtest)."""

import json

import pytest

from repro.cli import main
from repro.loadgen.arrivals import ArrivalConfig, ArrivalSchedule
from repro.loadgen.loadtest import (
    Calibration,
    LoadCell,
    LoadTestReport,
    calibrate,
    run_loadtest,
    sweep_architectures,
)
from repro.loadgen.runner import OpenRunResult
from repro.metrics.collectors import RunResult


def fake_report(goodputs):
    """A report with synthetic goodput cells (knee logic unit tests)."""
    report = LoadTestReport(
        architecture="wal",
        state="healthy",
        seed=1,
        arrival_process="poisson",
        policy="drop",
        slo_ms=100.0,
        calibration=Calibration("wal", 8, 1000.0, 8.0, 100.0),
    )
    for i, goodput in enumerate(goodputs):
        schedule = ArrivalSchedule(
            config=ArrivalConfig(), times_ms=(1.0, 2.0)
        )
        result = RunResult(
            architecture="wal",
            makespan_ms=1000.0,
            pages_processed=1,
            mean_completion_ms=1.0,
        )
        run = OpenRunResult(
            architecture="wal",
            state="healthy",
            schedule=schedule,
            result=result,
        )
        run.goodput_tps = goodput
        report.cells.append(
            LoadCell(multiplier=float(i + 1), offered_tps=goodput, run=run)
        )
    return report


class TestKneeLogic:
    def test_knee_is_first_cell_past_peak_below_threshold(self):
        report = fake_report([1.0, 2.0, 1.9, 1.5, 0.5])
        knee = report.knee(fraction=0.8)
        assert knee is not None
        # 1.9 > 0.8*2.0 = 1.6 so not the knee; 1.5 <= 1.6 is.
        assert knee.multiplier == 4.0

    def test_monotone_rise_has_no_knee(self):
        assert fake_report([0.5, 1.0, 1.5, 2.0]).knee() is None

    def test_dip_before_peak_is_not_a_knee(self):
        report = fake_report([0.1, 2.0, 1.9])
        assert report.knee(fraction=0.8) is None

    def test_empty_report_has_no_knee_or_peak(self):
        report = fake_report([])
        assert report.peak is None
        assert report.knee() is None

    def test_json_round_trip(self):
        report = fake_report([1.0, 2.0, 0.5])
        payload = json.loads(report.to_json())
        assert payload["architecture"] == "wal"
        assert payload["knee_multiplier"] == 3.0
        assert payload["peak_multiplier"] == 2.0
        assert len(payload["cells"]) == 3
        assert payload["ok"] is True


@pytest.fixture(scope="module")
def wal_report():
    """One real sweep, shared across assertions (the expensive bit)."""
    return run_loadtest("wal", seed=1985, n_per_cell=16)


class TestRealSweep:
    def test_oracles_hold_in_every_cell(self, wal_report):
        assert wal_report.ok, wal_report.violations
        for cell in wal_report.cells:
            run = cell.run
            assert run.admitted + run.rejected + run.shed == run.offered
            assert run.committed == run.admitted

    def test_collapse_knee_found(self, wal_report):
        knee = wal_report.knee()
        assert knee is not None
        assert knee.run.goodput_tps <= 0.8 * wal_report.peak.run.goodput_tps

    def test_calibration_positive(self, wal_report):
        assert wal_report.calibration.capacity_tps > 0
        assert wal_report.slo_ms > 0

    def test_summary_renders(self, wal_report):
        text = wal_report.summary()
        assert "knee at x" in text
        assert "capacity" in text

    def test_degraded_state_sweep_also_finds_knee(self):
        report = run_loadtest(
            "wal", seed=1985, n_per_cell=16, state="mirrored-degraded"
        )
        assert report.ok, report.violations
        assert report.knee() is not None

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            run_loadtest("wal", state="on-fire")


class TestSweepArchitectures:
    def test_dead_lp_skipped_for_non_wal(self):
        reports = sweep_architectures(
            ["shadow"], states=("healthy", "dead-lp"), n_per_cell=8,
            multipliers=(0.5, 3.0), extend=False,
        )
        assert [r.state for r in reports] == ["healthy"]


class TestCalibrate:
    def test_capacity_from_closed_makespan(self):
        cal = calibrate("shadow", seed=1985, n_transactions=8)
        assert cal.capacity_tps == pytest.approx(
            1000.0 * 8 / cal.makespan_ms
        )


class TestCli:
    def test_loadtest_cli_single_arch(self, capsys, tmp_path):
        out = tmp_path / "loadtest.json"
        code = main(
            [
                "loadtest",
                "--arch",
                "shadow",
                "-n",
                "12",
                "--states",
                "healthy",
                "--json",
                str(out),
            ]
        )
        text = capsys.readouterr().out
        assert code == 0
        assert "knee at x" in text
        payload = json.loads(out.read_text())
        assert payload[0]["architecture"] == "shadow"
        assert payload[0]["knee_multiplier"] is not None

    def test_loadtest_cli_rejects_bad_states(self, capsys):
        assert main(["loadtest", "--states", "zombie"]) == 2

    def test_loadtest_cli_rejects_bad_loads(self, capsys):
        assert main(["loadtest", "--loads", "0,-1"]) == 2
