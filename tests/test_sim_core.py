"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironment:
    def test_starts_at_time_zero(self):
        assert Environment().now == 0.0

    def test_initial_time(self):
        assert Environment(5.0).now == 5.0

    def test_run_empty_schedule(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_run_until_advances_clock_exactly(self):
        env = Environment()
        env.timeout(3)
        env.run(until=10)
        assert env.now == 10

    def test_run_until_past_raises(self):
        env = Environment()
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_step_on_empty_schedule_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(7)
        env.timeout(3)
        assert env.peek() == 3


class TestTimeout:
    def test_fires_after_delay(self):
        env = Environment()
        seen = []

        def proc(env):
            yield env.timeout(5)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [5]

    def test_carries_value(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(1, value="hello")
            return value

        result = env.run(until=env.process(proc(env)))
        assert result == "hello"

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_fires_at_now(self):
        env = Environment()
        seen = []

        def proc(env):
            yield env.timeout(0)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [0]


class TestEvent:
    def test_succeed_delivers_value(self):
        env = Environment()
        evt = env.event()

        def proc(env, evt):
            value = yield evt
            return value

        p = env.process(proc(env, evt))
        evt.succeed(42)
        assert env.run(until=p) == 42

    def test_double_trigger_raises(self):
        env = Environment()
        evt = env.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_fail_raises_in_waiter(self):
        env = Environment()
        evt = env.event()
        caught = []

        def proc(env, evt):
            try:
                yield evt
            except ValueError as exc:
                caught.append(exc)

        env.process(proc(env, evt))
        evt.fail(ValueError("boom"))
        env.run()
        assert len(caught) == 1

    def test_unhandled_failure_propagates_from_run(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("unseen"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_defused_failure_does_not_propagate(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("defused"))
        evt.defuse()
        env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_of_untriggered_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return "done"

        assert env.run(until=env.process(proc(env))) == "done"

    def test_yield_non_event_raises_inside_process(self):
        env = Environment()
        caught = []

        def proc(env):
            try:
                yield 42
            except SimulationError as exc:
                caught.append(exc)

        env.process(proc(env))
        env.run()
        assert len(caught) == 1

    def test_exception_in_process_propagates(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            raise KeyError("inside")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_waiting_on_finished_process(self):
        env = Environment()

        def fast(env):
            yield env.timeout(1)
            return 10

        def waiter(env, p):
            yield env.timeout(5)
            value = yield p  # already finished
            return value

        p = env.process(fast(env))
        w = env.process(waiter(env, p))
        assert env.run(until=w) == 10

    def test_is_alive(self):
        env = Environment()

        def proc(env):
            yield env.timeout(3)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_two_processes_interleave_deterministically(self):
        env = Environment()
        order = []

        def proc(env, name, delay):
            while env.now < 4:
                order.append((env.now, name))
                yield env.timeout(delay)

        env.process(proc(env, "a", 2))
        env.process(proc(env, "b", 1))
        env.run()
        assert order == [
            (0, "a"), (0, "b"), (1, "b"), (2, "a"), (2, "b"), (3, "b"),
        ]

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        seen = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                seen.append((env.now, interrupt.cause))

        def killer(env, target):
            yield env.timeout(4)
            target.interrupt("enough")

        target = env.process(sleeper(env))
        env.process(killer(env, target))
        env.run()
        assert seen == [(4, "enough")]

    def test_interrupted_process_can_rewait(self):
        env = Environment()
        seen = []

        def sleeper(env):
            timeout = env.timeout(10)
            try:
                yield timeout
            except Interrupt:
                yield timeout  # original event still valid
            seen.append(env.now)

        def killer(env, target):
            yield env.timeout(2)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(killer(env, target))
        env.run()
        assert seen == [10]

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            results = yield AllOf(env, [env.timeout(2, "a"), env.timeout(5, "b")])
            return (env.now, sorted(results.values()))

        assert env.run(until=env.process(proc(env))) == (5, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            results = yield AnyOf(env, [env.timeout(2, "fast"), env.timeout(9, "slow")])
            return (env.now, list(results.values()))

        assert env.run(until=env.process(proc(env))) == (2, ["fast"])

    def test_and_operator(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1) & env.timeout(3)
            return env.now

        assert env.run(until=env.process(proc(env))) == 3

    def test_or_operator(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1) | env.timeout(3)
            return env.now

        assert env.run(until=env.process(proc(env))) == 1

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield AllOf(env, [])
            return env.now

        assert env.run(until=env.process(proc(env))) == 0

    def test_all_of_with_already_processed_events(self):
        env = Environment()

        def waiter(env):
            t1 = env.timeout(1)
            t2 = env.timeout(2)
            yield env.timeout(5)
            yield AllOf(env, [t1, t2])
            return env.now

        assert env.run(until=env.process(waiter(env))) == 5


class TestRunUntilEvent:
    def test_run_until_event_returns_value(self):
        env = Environment()
        assert env.run(until=env.timeout(3, "v")) == "v"
        assert env.now == 3

    def test_run_until_never_fires_raises(self):
        env = Environment()
        evt = env.event()
        env.timeout(1)
        with pytest.raises(SimulationError):
            env.run(until=evt)
