"""Unit tests for fault plans and the deterministic injector."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec, InjectedCrash


class TestFaultSpec:
    def test_exact_hook_match(self):
        spec = FaultSpec(FaultKind.CRASH, hook="wal.commit.pre-record")
        assert spec.matches_hook("wal.commit.pre-record")
        assert not spec.matches_hook("wal.commit.post")

    def test_star_matches_everything(self):
        spec = FaultSpec(FaultKind.CRASH, hook="*")
        assert spec.matches_hook("anything")
        assert spec.matches_hook("op-boundary")

    def test_prefix_match(self):
        spec = FaultSpec(FaultKind.CRASH, hook="wal.commit.*")
        assert spec.matches_hook("wal.commit.pre-record")
        assert spec.matches_hook("wal.commit.mid-force")
        assert not spec.matches_hook("wal.flush.post-write")

    def test_no_hook_matches_nothing(self):
        spec = FaultSpec(FaultKind.TORN_WRITE, probability=0.5)
        assert not spec.matches_hook("op-boundary")

    def test_dict_roundtrip(self):
        spec = FaultSpec(
            FaultKind.LP_FAIL, hook=None, at_time=12.5, target=2, probability=0.0
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_qp_fail_with_repair_roundtrip(self):
        spec = FaultSpec(
            FaultKind.QP_FAIL, at_time=40.0, target=3, repair_after=250.0
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        text = FaultPlan.of(spec, seed=1).describe()
        assert "qp-fail" in text
        assert "repair+250.0" in text


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="shadow.commit.*", occurrence=3),
            FaultSpec(FaultKind.MSG_LOSS, probability=0.25),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_stable(self):
        plan = FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="*"), seed=7)
        assert plan.to_json() == plan.to_json()

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.DISK_FAIL, at_time=5.0, target=1),
            FaultSpec(FaultKind.TORN_WRITE, probability=0.1),
            seed=3,
        )
        text = plan.describe()
        assert "disk-fail" in text
        assert "torn-write" in text
        assert "seed=3" in text


class TestFaultInjector:
    def test_crash_fires_at_nth_crossing(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="*", occurrence=3), seed=0
        )
        injector = FaultInjector(plan)
        injector.reached("a")
        injector.reached("b")
        with pytest.raises(InjectedCrash) as exc:
            injector.reached("c")
        assert exc.value.hook == "c"
        assert exc.value.crossing == 3

    def test_hook_scoped_occurrence_counts_only_matches(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, hook="wal.*", occurrence=2), seed=0
        )
        injector = FaultInjector(plan)
        injector.reached("wal.commit.pre-record")
        injector.reached("op-boundary")  # does not count against wal.*
        with pytest.raises(InjectedCrash):
            injector.reached("wal.commit.post")

    def test_poll_is_non_raising(self):
        plan = FaultPlan.of(FaultSpec(FaultKind.CRASH, hook="*"), seed=0)
        injector = FaultInjector(plan)
        assert injector.poll("machine.writeback") is True
        assert injector.poll("machine.writeback") is False

    def test_probabilistic_faults_draw_from_seeded_stream(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.MSG_LOSS, probability=0.5), seed=9
        )
        first = [FaultInjector(plan).drop_message() for _ in range(20)]
        second = [FaultInjector(plan).drop_message() for _ in range(20)]
        assert first == second

    def test_certain_torn_write_always_fires(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.TORN_WRITE, probability=1.0), seed=0
        )
        injector = FaultInjector(plan)
        assert injector.torn_write()
        assert ("torn-write", "None", 0) in injector.fired

    def test_target_filtering(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.DISK_FAIL, target=1, probability=1.0), seed=0
        )
        injector = FaultInjector(plan)
        assert not injector._probabilistic(FaultKind.DISK_FAIL, 0)
        assert injector._probabilistic(FaultKind.DISK_FAIL, 1)

    def test_timed_faults_filtered_by_kind(self):
        plan = FaultPlan.of(
            FaultSpec(FaultKind.CRASH, at_time=10.0),
            FaultSpec(FaultKind.LP_FAIL, at_time=5.0, target=0),
            FaultSpec(FaultKind.CRASH, hook="*"),
            seed=0,
        )
        injector = FaultInjector(plan)
        assert len(injector.timed_faults(FaultKind.CRASH)) == 1
        assert len(injector.timed_faults(FaultKind.LP_FAIL)) == 1
