"""The reprolint engine: every rule, suppressions, reporters, and the CLI.

Each rule is exercised against a violating and a clean inline fixture
written to a throwaway ``src/repro`` tree, so the tests stay hermetic and
the fixtures document exactly what each rule considers wrong.
"""

import json
import textwrap

import pytest

from repro.lint import (
    Finding,
    LintEngine,
    all_rules,
    render_json,
    render_text,
)
from repro.lint.cli import main
from repro.lint.reporters import JSON_SCHEMA_VERSION

EXPECTED_RULES = {
    "API01",
    "API02",
    "ARCH01",
    "ARCH03",
    "BENCH01",
    "BENCH02",
    "DET01",
    "DET02",
    "DET03",
    "FP01",
    "PROTO01",
    "PROTO02",
    "RNG01",
    "TR02",
    "TRACE01",
}


def lint(tmp_path, files, rules=None):
    """Write ``files`` (relpath -> source) under tmp_path and lint them."""
    for rel, text in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    engine = LintEngine(rules=rules, root=str(tmp_path))
    return engine.run([str(tmp_path)])


def codes(findings):
    return [finding.rule for finding in findings]


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(all_rules()) == EXPECTED_RULES

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="NOPE99"):
            LintEngine(rules=["NOPE99"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        findings = lint(tmp_path, {"src/repro/broken.py": "def oops(:\n"})
        assert codes(findings) == ["PARSE"]


class TestDet01AmbientEntropy:
    def test_direct_random_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                import random

                rng = random.Random(3)
                """
            },
            rules=["DET01"],
        )
        assert codes(findings) == ["DET01"]
        assert "RandomStreams" in findings[0].message

    def test_from_import_and_alias_resolved(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                from random import randrange
                import uuid as u

                a = randrange(5)
                b = u.uuid4()
                """
            },
            rules=["DET01"],
        )
        assert codes(findings) == ["DET01", "DET01"]

    def test_wall_clock_calls_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                import time
                from datetime import datetime

                t = time.time()
                d = datetime.now()
                """
            },
            rules=["DET01"],
        )
        assert len(findings) == 2
        assert all("Environment.now" in f.message for f in findings)

    def test_benign_time_member_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                import time

                parsed = time.strptime("1985", "%Y")
                """
            },
            rules=["DET01"],
        )
        assert findings == []

    def test_outside_repro_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "tools/script.py": """
                import random

                x = random.random()
                """
            },
            rules=["DET01"],
        )
        assert findings == []

    def test_file_suppression(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                # reprolint: disable=DET01  (fixture)
                import random

                x = random.random()
                """
            },
            rules=["DET01"],
        )
        assert findings == []

    def test_line_suppression_is_line_scoped(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                import random

                a = random.random()  # reprolint: disable-line=DET01
                b = random.random()
                """
            },
            rules=["DET01"],
        )
        assert len(findings) == 1
        assert findings[0].line == 5


class TestDet02SetIteration:
    def test_iterating_set_literal_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def drain(queue):
                    pending = {1, 2, 3}
                    for item in pending:
                        queue.append(item)
                """
            },
            rules=["DET02"],
        )
        assert codes(findings) == ["DET02"]
        assert "sorted" in findings[0].message

    def test_set_call_and_comprehension_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def spread(items):
                    return [x for x in set(items)]
                """
            },
            rules=["DET02"],
        )
        assert codes(findings) == ["DET02"]

    def test_sorted_wrapper_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def drain(queue):
                    pending = {1, 2, 3}
                    for item in sorted(pending):
                        queue.append(item)
                """
            },
            rules=["DET02"],
        )
        assert findings == []

    def test_reassignment_clears_set_taint(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def drain(queue):
                    pending = {1, 2, 3}
                    pending = sorted(pending)
                    for item in pending:
                        queue.append(item)
                """
            },
            rules=["DET02"],
        )
        assert findings == []

    def test_dict_get_with_set_default_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def members(table, key):
                    for item in table.get(key, set()):
                        yield item
                """
            },
            rules=["DET02"],
        )
        assert codes(findings) == ["DET02"]


class TestDet03ProcessYields:
    def test_non_event_yield_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def ticker(env):
                    yield 5

                def wire(env):
                    env.process(ticker(env))
                """
            },
            rules=["DET03"],
        )
        assert codes(findings) == ["DET03"]
        assert "non-Event" in findings[0].message

    def test_non_generator_target_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def not_a_generator(env):
                    return 1

                def wire(env):
                    env.process(not_a_generator(env))
                """
            },
            rules=["DET03"],
        )
        assert codes(findings) == ["DET03"]
        assert "not a generator" in findings[0].message

    def test_event_yields_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def server(env, disk):
                    yield env.timeout(3.0)
                    request = disk.read([0])
                    yield request.done

                def wire(env, disk):
                    env.process(server(env, disk))
                """
            },
            rules=["DET03"],
        )
        assert findings == []

    def test_unwired_generator_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                def helper():
                    yield 42
                """
            },
            rules=["DET03"],
        )
        assert findings == []


BASE_PY = """
class RecoveryArchitecture:
    name = "bare"

    def attach(self, machine):
        self.machine = machine

    def on_commit(self, txn):
        yield None

    def writeback(self, txn, page):
        yield None
"""


class TestArch01HookSurface:
    def test_violations_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/base.py": BASE_PY,
                "src/repro/core/toy/architecture.py": """
                from repro.core.base import RecoveryArchitecture

                class ToyArchitecture(RecoveryArchitecture):
                    def attach(self, machine):
                        self.machine = machine

                    def on_commit(self, txn, extra):
                        yield None

                    def on_comit(self, txn):
                        yield None
                """,
            },
            rules=["ARCH01"],
        )
        messages = " | ".join(f.message for f in findings)
        assert codes(findings) == ["ARCH01"] * 4
        assert "'name'" in messages
        assert "super().attach" in messages
        assert "drifts from the base hook" in messages
        assert "typo of hook 'on_commit'" in messages

    def test_faithful_subclass_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/base.py": BASE_PY,
                "src/repro/core/toy/architecture.py": """
                from repro.core.base import RecoveryArchitecture

                class ToyArchitecture(RecoveryArchitecture):
                    name = "toy"

                    def attach(self, machine):
                        super().attach(machine)

                    def on_commit(self, txn):
                        yield None
                """,
            },
            rules=["ARCH01"],
        )
        assert findings == []

    def test_base_module_itself_exempt(self, tmp_path):
        findings = lint(
            tmp_path, {"src/repro/core/base.py": BASE_PY}, rules=["ARCH01"]
        )
        assert findings == []


class TestProto01WalOrdering:
    def test_unprotected_writeback_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                def writeback(machine, addr):
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert codes(findings) == ["PROTO01"]
        assert "no log force" in findings[0].message

    def test_durable_wait_protects(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                def writeback(machine, fragment, addr):
                    yield fragment.durable
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []

    def test_log_force_protects(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                def writeback(machine, log, addr):
                    log.force()
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []

    def test_branch_local_force_does_not_cover_other_path(self, tmp_path):
        # The source-order walk this rule replaced (ARCH02) was blind to
        # exactly this: the force only happens on the hot-frame branch.
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                def writeback(machine, log, frame, addr):
                    if frame.hot:
                        log.force()
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert codes(findings) == ["PROTO01"]

    def test_force_on_all_branches_protects(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                def writeback(machine, log, frame, addr):
                    if frame.hot:
                        log.force()
                    else:
                        yield frame.durable
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []

    def test_durable_triggered_guard_protects(self, tmp_path):
        # ``if not fragment.durable.triggered: yield`` — consulting the
        # barrier covers both branches (either it fired or we wait).
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                def writeback(machine, fragment, addr):
                    if not fragment.durable.triggered:
                        yield fragment.durable
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []

    def test_helper_that_forces_counts_at_call_site(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                class Arch:
                    def writeback(self, frame, addr):
                        self._secure(frame)
                        request = self.disks[0].write([addr], tag="writeback")
                        yield request.done

                    def _secure(self, frame):
                        self.log.force()
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []

    def test_helper_entered_protected_not_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                class Arch:
                    def writeback(self, frame, addr):
                        self.log.force()
                        yield from self._home(addr)

                    def _home(self, addr):
                        request = self.disks[0].write([addr], tag="writeback")
                        yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []

    def test_helper_entered_unprotected_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/toy.py": """
                class Arch:
                    def writeback(self, frame, addr):
                        yield from self._home(addr)

                    def _home(self, addr):
                        request = self.disks[0].write([addr], tag="writeback")
                        yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert codes(findings) == ["PROTO01"]
        assert "_home" in findings[0].message

    def test_outside_core_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                def writeback(machine, addr):
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO01"],
        )
        assert findings == []


class TestProto02ShadowOrdering:
    def test_unprotected_overwrite_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/shadow/toy.py": """
                def on_commit(machine, addr):
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO02"],
        )
        assert codes(findings) == ["PROTO02"]
        assert "no shadow install" in findings[0].message

    def test_scratch_write_protects(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/shadow/toy.py": """
                def on_commit(machine, addr, scratch_addr):
                    saved = machine.disks[0].write([scratch_addr], tag="scratch")
                    yield saved.done
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO02"],
        )
        assert findings == []

    def test_install_protects_and_loop_paths_checked(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/shadow/toy.py": """
                def on_commit(machine, table, pages):
                    for page in pages:
                        table.install(page)
                    request = machine.disks[0].write(pages, tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO02"],
        )
        # The zero-iteration path skips install: flagged.
        assert codes(findings) == ["PROTO02"]

    def test_wal_scope_not_checked_here(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/core/logging/toy.py": """
                def writeback(machine, addr):
                    request = machine.disks[0].write([addr], tag="writeback")
                    yield request.done
                """
            },
            rules=["PROTO02"],
        )
        assert findings == []


FP01_BASE_PY = """
class RecoveryManager:
    name = "abstract"

    def commit(self, tid):
        self._do_commit(tid)

    def _fault_point(self, name):
        pass
"""


class TestFp01FaultPointCoverage:
    def test_commit_without_fault_point_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def _do_commit(self, tid):
                        self.stable.append("commits", tid)
                """,
            },
            rules=["FP01"],
        )
        assert codes(findings) == ["FP01"]
        assert "ToyManager._do_commit" in findings[0].message
        assert "_fault_point" in findings[0].message

    def test_fault_point_on_path_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def _do_commit(self, tid):
                        self._fault_point("toy.commit.pre-record")
                        self.stable.append("commits", tid)
                """,
            },
            rules=["FP01"],
        )
        assert findings == []

    def test_branch_missing_fault_point_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def _do_commit(self, tid):
                        if tid % 2:
                            self._fault_point("toy.commit.odd")
                        self.stable.append("commits", tid)
                """,
            },
            rules=["FP01"],
        )
        assert codes(findings) == ["FP01"]

    def test_helper_reached_from_entry_checked(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def _do_commit(self, tid):
                        self._fault_point("toy.commit.pre")
                        self._record(tid)

                    def _record(self, tid):
                        self.stable.append("commits", tid)
                """,
            },
            rules=["FP01"],
        )
        assert codes(findings) == ["FP01"]
        assert "_record" in findings[0].message

    def test_always_faulting_helper_discharges(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def _do_commit(self, tid):
                        self._pause()
                        self.stable.append("commits", tid)

                    def _pause(self):
                        self._fault_point("toy.commit.pre-record")
                """,
            },
            rules=["FP01"],
        )
        assert findings == []

    def test_method_not_reachable_from_entries_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def debug_poke(self):
                        self.stable.append("scratch", 0)
                """,
            },
            rules=["FP01"],
        )
        assert findings == []

    def test_raising_path_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": FP01_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    def _do_commit(self, tid):
                        self.stable.append("commits", tid)
                        raise RuntimeError("commit path always aborts")
                """,
            },
            rules=["FP01"],
        )
        assert findings == []


class TestTr02SpanBalance:
    def test_early_return_leaves_span_open(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                class M:
                    def run(self, work):
                        span = self._tspan("service.cpu")
                        if not work:
                            return 0
                        self._tend(span)
                        return 1
                """
            },
            rules=["TR02"],
        )
        assert codes(findings) == ["TR02"]
        assert "still open" in findings[0].message

    def test_finally_balances_early_return(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                class M:
                    def run(self, work):
                        span = self._tspan("service.cpu")
                        try:
                            if not work:
                                return 0
                            return 1
                        finally:
                            self._tend(span)
                """
            },
            rules=["TR02"],
        )
        assert findings == []

    def test_exceptional_exit_exempt(self, tmp_path):
        # A crash cut-off legitimately leaves the span open.
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                class M:
                    def run(self, work):
                        span = self._tspan("service.cpu")
                        if not work:
                            raise RuntimeError("machine crashed")
                        self._tend(span)
                        return 1
                """
            },
            rules=["TR02"],
        )
        assert findings == []

    def test_rebegin_while_open_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                class M:
                    def run(self, jobs):
                        for job in jobs:
                            span = self._tspan("service.cpu")
                            job.go()
                        self._tend(span)
                """
            },
            rules=["TR02"],
        )
        assert any("re-begins" in f.message for f in findings)

    def test_balanced_loop_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                class M:
                    def run(self, jobs):
                        for job in jobs:
                            span = self._tspan("service.cpu")
                            job.go()
                            self._tend(span)
                """
            },
            rules=["TR02"],
        )
        assert findings == []

    def test_escaping_span_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/toy.py": """
                class M:
                    def open_span(self):
                        span = self._tspan("service.cpu")
                        return span
                """
            },
            rules=["TR02"],
        )
        assert findings == []

    def test_tracer_begin_end_tracked(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/trace/toy.py": """
                def record(tracer, work):
                    span = tracer.begin("txn")
                    if work:
                        tracer.end(span)
                """
            },
            rules=["TR02"],
        )
        assert codes(findings) == ["TR02"]


class TestRng01StreamAliasing:
    def test_two_modules_sharing_a_stream_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/workload/gen.py": """
                def arrivals(machine):
                    return machine.streams.stream("shared.alias").random()
                """,
                "src/repro/faults/jitter.py": """
                def jitter(machine):
                    return machine.streams.stream("shared.alias").random()
                """,
            },
            rules=["RNG01"],
        )
        assert codes(findings) == ["RNG01", "RNG01"]
        assert "shared.alias" in findings[0].message

    def test_single_consumer_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/workload/gen.py": """
                def arrivals(machine):
                    return machine.streams.stream("workload.arrivals").random()
                """,
                "src/repro/faults/jitter.py": """
                def jitter(machine):
                    return machine.streams.stream("faults.jitter").random()
                """,
            },
            rules=["RNG01"],
        )
        assert findings == []

    def test_fresh_private_streams_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/workload/gen.py": """
                from repro.sim.rng import RandomStreams

                def arrivals(seed):
                    return RandomStreams(seed).stream("shared.name").random()
                """,
                "src/repro/analysis/check.py": """
                from repro.sim.rng import RandomStreams

                def replay(seed):
                    return RandomStreams(seed).fork("replay").stream("shared.name").random()
                """,
            },
            rules=["RNG01"],
        )
        assert findings == []

    def test_computed_names_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/hardware/disk.py": """
                def lane(machine, index):
                    return machine.streams.stream(f"disk.{index}")
                """,
                "src/repro/hardware/mirror.py": """
                def lane(machine, index):
                    return machine.streams.stream(f"disk.{index}")
                """,
            },
            rules=["RNG01"],
        )
        assert findings == []


MANAGER_BASE_PY = """
class RecoveryManager:
    name = "abstract"
    checkpoint_policy = None
    checkpoint_unsupported = False
"""


class TestArch03CheckpointCapability:
    def test_undeclared_manager_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": MANAGER_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    name = "toy"
                """,
            },
            rules=["ARCH03"],
        )
        assert codes(findings) == ["ARCH03"]
        assert "checkpoint_policy" in findings[0].message
        assert "ToyManager" in findings[0].message

    def test_policy_declaration_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": MANAGER_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    name = "toy"
                    checkpoint_policy = object
                """,
            },
            rules=["ARCH03"],
        )
        assert findings == []

    def test_explicit_opt_out_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": MANAGER_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class ToyManager(RecoveryManager):
                    name = "toy"
                    checkpoint_unsupported = True
                """,
            },
            rules=["ARCH03"],
        )
        assert findings == []

    def test_inherited_declaration_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": MANAGER_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class CheckpointedManager(RecoveryManager):
                    checkpoint_policy = object

                class ToyManager(CheckpointedManager):
                    name = "toy"
                """,
            },
            rules=["ARCH03"],
        )
        assert findings == []

    def test_base_declaration_does_not_count(self, tmp_path):
        # The abstract base's own attributes are the undeclared default —
        # inheriting them is exactly what ARCH03 exists to catch.
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": MANAGER_BASE_PY,
                "src/repro/storage/toy.py": """
                from repro.storage.interface import RecoveryManager

                class MidManager(RecoveryManager):
                    pass

                class ToyManager(MidManager):
                    name = "toy"
                """,
            },
            rules=["ARCH03"],
        )
        assert codes(findings) == ["ARCH03", "ARCH03"]

    def test_outside_storage_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/interface.py": MANAGER_BASE_PY,
                "src/repro/faults/toy.py": """
                from repro.storage.interface import RecoveryManager

                class FixtureManager(RecoveryManager):
                    name = "fixture"
                """,
            },
            rules=["ARCH03"],
        )
        assert findings == []


class TestApi01DunderAll:
    def test_missing_dunder_all_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {"src/repro/foo.py": "def public():\n    return 1\n"},
            rules=["API01"],
        )
        assert codes(findings) == ["API01"]
        assert "no __all__" in findings[0].message

    def test_stale_and_missing_entries_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                __all__ = ["gone"]

                def public():
                    return 1
                """
            },
            rules=["API01"],
        )
        messages = " | ".join(f.message for f in findings)
        assert codes(findings) == ["API01", "API01"]
        assert "'gone' which is not defined" in messages
        assert "public 'public' missing" in messages

    def test_non_literal_dunder_all_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                names = ["a"]
                __all__ = names
                """
            },
            rules=["API01"],
        )
        assert codes(findings) == ["API01"]
        assert "literal" in findings[0].message

    def test_consistent_module_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/foo.py": """
                __all__ = ["CONSTANT", "public"]

                CONSTANT = 3

                def public():
                    return _helper()

                def _helper():
                    return 1
                """
            },
            rules=["API01"],
        )
        assert findings == []

    def test_dunder_main_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {"src/repro/tool/__main__.py": "def run():\n    return 0\n"},
            rules=["API01"],
        )
        assert findings == []


class TestApi02Layering:
    def test_upward_import_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/sim/bad.py": """
                from repro.machine.machine import DatabaseMachine
                """
            },
            rules=["API02"],
        )
        assert codes(findings) == ["API02"]
        assert "layer violation" in findings[0].message

    def test_downward_and_sibling_imports_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/good.py": """
                from repro.sim.core import Environment
                from repro.machine.config import MachineConfig
                from repro.core.base import RecoveryArchitecture
                """
            },
            rules=["API02"],
        )
        assert findings == []

    def test_type_checking_import_exempt(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/sim/hinted.py": """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.machine.machine import DatabaseMachine
                """
            },
            rules=["API02"],
        )
        assert findings == []

    def test_same_layer_cross_package_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/storage/bad.py": """
                import repro.metrics.collectors
                """
            },
            rules=["API02"],
        )
        assert codes(findings) == ["API02"]


class TestBench01DeclaredSeed:
    def test_seedless_benchmark_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                def test_toy(benchmark):
                    benchmark(lambda: 1)
                """
            },
            rules=["BENCH01"],
        )
        assert codes(findings) == ["BENCH01"]
        assert "seed" in findings[0].message

    def test_seed_constant_satisfies(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                SEED = 1985

                def test_toy(benchmark):
                    benchmark(lambda: SEED)
                """
            },
            rules=["BENCH01"],
        )
        assert findings == []

    def test_seed_keyword_satisfies(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                def test_toy(benchmark, run):
                    benchmark(lambda: run(seed=7))
                """
            },
            rules=["BENCH01"],
        )
        assert findings == []

    def test_non_benchmark_file_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {"benchmarks/_helper.py": "def helper():\n    return 1\n"},
            rules=["BENCH01"],
        )
        assert findings == []

    def test_grid_declaration_defers_to_bench02(self, tmp_path):
        # A grid spec pins the seed declaratively; BENCH01 steps aside
        # even though no SEED constant or seed= call keyword appears in
        # the module body outside the grid.
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                from repro.bench import Grid

                GRID = Grid(name="toy", seed=1, runner=len, primary_metric="x")
                """
            },
            rules=["BENCH01"],
        )
        assert findings == []


_GRIDDED = """
from repro.bench import Grid


def runner(params, seed):
    return {"cost": 1.0}


GRID = Grid(name="toy", seed=1985, runner=runner, primary_metric="cost")
"""


class TestBench02GridSpec:
    def test_gridless_benchmark_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                SEED = 1985

                def test_toy(benchmark):
                    benchmark(lambda: SEED)
                """
            },
            rules=["BENCH02"],
        )
        assert codes(findings) == ["BENCH02"]
        assert "grid spec" in findings[0].message

    def test_direct_grid_satisfies(self, tmp_path):
        findings = lint(
            tmp_path,
            {"benchmarks/bench_toy.py": _GRIDDED},
            rules=["BENCH02"],
        )
        assert findings == []

    def test_harness_factory_satisfies(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                from benchmarks._harness import table_grid

                GRID = table_grid("toy", len, primary_metric="mean.x", seed=1985)
                """
            },
            rules=["BENCH02"],
        )
        assert findings == []

    def test_grid_without_seed_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                from repro.bench import Grid

                GRID = Grid(name="toy", runner=len, primary_metric="x")
                """
            },
            rules=["BENCH02"],
        )
        assert codes(findings) == ["BENCH02"]
        assert "seed=" in findings[0].message

    def test_unrelated_call_is_not_a_grid(self, tmp_path):
        # A call that merely *looks* like a factory (same name, different
        # origin) must not satisfy the rule.
        findings = lint(
            tmp_path,
            {
                "benchmarks/bench_toy.py": """
                from somewhere_else import Grid

                GRID = Grid(name="toy", seed=1985)
                """
            },
            rules=["BENCH02"],
        )
        assert codes(findings) == ["BENCH02"]

    def test_non_benchmark_file_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {"benchmarks/_helper.py": "def helper():\n    return 1\n"},
            rules=["BENCH02"],
        )
        assert findings == []


_TRACE_CATALOGUE = """
TXN = "txn"
LOCK_WAIT = "lock.wait"
"""


class TestTrace01CataloguedSpanNames:
    def test_computed_name_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/trace/names.py": _TRACE_CATALOGUE,
                "src/repro/machine/thing.py": """
                def go(self, name):
                    self.tracer.begin(name, tid=1)
                """,
            },
            rules=["TRACE01"],
        )
        assert codes(findings) == ["TRACE01"]
        assert "string literal" in findings[0].message

    def test_unregistered_name_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/trace/names.py": _TRACE_CATALOGUE,
                "src/repro/machine/thing.py": """
                def go(self):
                    self._tspan("made.up", tid=1)
                """,
            },
            rules=["TRACE01"],
        )
        assert codes(findings) == ["TRACE01"]
        assert "made.up" in findings[0].message

    def test_catalogued_literal_clean(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/trace/names.py": _TRACE_CATALOGUE,
                "src/repro/machine/thing.py": """
                def go(self, tracer):
                    span = tracer.begin("txn", tid=1)
                    self._tinstant("lock.wait")
                    return span
                """,
            },
            rules=["TRACE01"],
        )
        assert findings == []

    def test_no_positional_name_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/trace/names.py": _TRACE_CATALOGUE,
                "src/repro/machine/thing.py": """
                def go(self):
                    self.tracer.begin(name="txn")
                """,
            },
            rules=["TRACE01"],
        )
        assert codes(findings) == ["TRACE01"]

    def test_without_catalogue_only_literalness_checked(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/machine/thing.py": """
                def go(self):
                    self._tspan("anything.goes")
                """
            },
            rules=["TRACE01"],
        )
        assert findings == []

    def test_unrelated_begin_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            {
                "src/repro/trace/names.py": _TRACE_CATALOGUE,
                "src/repro/storage/thing.py": """
                def go(self, manager, txn):
                    tid = manager.begin()
                    txn.begin(tid)
                    return tid
                """,
            },
            rules=["TRACE01"],
        )
        assert findings == []


class TestReporters:
    FINDINGS = [
        Finding(path="src/repro/a.py", line=3, col=5, rule="DET01", message="bad"),
        Finding(path="src/repro/b.py", line=9, col=1, rule="API01", message="worse"),
    ]

    def test_text_format(self):
        text = render_text(self.FINDINGS, checked_files=4)
        lines = text.splitlines()
        assert lines[0] == "src/repro/a.py:3:5: DET01 bad"
        assert lines[-1] == "2 findings in 4 files"

    def test_text_singular(self):
        assert render_text(self.FINDINGS[:1], checked_files=1).endswith(
            "1 finding in 1 files"
        )

    def test_json_schema(self):
        payload = json.loads(render_json(self.FINDINGS, checked_files=4))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files"] == 4
        assert payload["count"] == 2
        assert len(payload["findings"]) == 2
        entry = payload["findings"][0]
        assert set(entry) == {"path", "line", "col", "rule", "message"}
        assert entry["rule"] == "DET01"

    def test_findings_sort_by_location(self):
        assert sorted(reversed(self.FINDINGS)) == self.FINDINGS


class TestCli:
    def _write(self, tmp_path, rel, text):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/ok.py", '__all__ = []\n')
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "src/repro/bad.py",
            "import random\n\n__all__ = []\n\nx = random.random()\n",
        )
        assert main([str(tmp_path)]) == 1
        assert "DET01" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        self._write(tmp_path, "src/repro/ok.py", '__all__ = []\n')
        assert main(["--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0

    def test_rule_selection(self, tmp_path, capsys):
        self._write(
            tmp_path, "src/repro/bad.py", "import random\n\nx = random.random()\n"
        )
        # API01 would flag the missing __all__; restricting to DET02 hides both.
        assert main(["--rules", "DET02", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "error" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "no-such-dir"
        assert main([str(missing)]) == 2
        assert "no such path" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--rules", "NOPE99", "src"]) == 2
        assert "NOPE99" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in EXPECTED_RULES:
            assert code in out
