"""Unit tests for the parallel-logging architecture."""

import random

import pytest

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import (
    FragmentRouting,
    LoggingConfig,
    LogMode,
    ParallelLoggingArchitecture,
    SelectionPolicy,
)
from repro.core.logging import LogFragment, LogProcessor, SelectorState, select_log_processor
from repro.hardware import IBM_3350, ConventionalDisk
from repro.sim import Environment, RandomStreams
from repro.workload import Transaction


class TestSelectionPolicies:
    def make(self):
        return SelectorState(), random.Random(0)

    def txn(self, tid):
        return Transaction(tid=tid, read_pages=(1,), write_pages=frozenset())

    def test_cyclic_cycles_per_qp(self):
        state, rng = self.make()
        picks = [
            select_log_processor(SelectionPolicy.CYCLIC, 3, 0, self.txn(1), state, rng)
            for _ in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_cyclic_counters_are_per_qp(self):
        state, rng = self.make()
        a = select_log_processor(SelectionPolicy.CYCLIC, 3, 0, self.txn(1), state, rng)
        b = select_log_processor(SelectionPolicy.CYCLIC, 3, 1, self.txn(1), state, rng)
        assert a == b == 0  # each QP starts its own cycle

    def test_qp_mod(self):
        state, rng = self.make()
        assert select_log_processor(SelectionPolicy.QP_MOD, 4, 9, self.txn(1), state, rng) == 1

    def test_txn_mod(self):
        state, rng = self.make()
        assert select_log_processor(SelectionPolicy.TXN_MOD, 4, 0, self.txn(7), state, rng) == 3

    def test_random_in_range(self):
        state, rng = self.make()
        picks = {
            select_log_processor(SelectionPolicy.RANDOM, 3, 0, self.txn(1), state, rng)
            for _ in range(60)
        }
        assert picks == {0, 1, 2}

    def test_single_lp_short_circuits(self):
        state, rng = self.make()
        assert select_log_processor(SelectionPolicy.RANDOM, 1, 5, self.txn(9), state, rng) == 0

    def test_zero_lps_rejected(self):
        state, rng = self.make()
        with pytest.raises(ValueError):
            select_log_processor(SelectionPolicy.CYCLIC, 0, 0, self.txn(1), state, rng)


class TestLogProcessor:
    def make_lp(self, fragments_per_page=3):
        env = Environment()
        disk = ConventionalDisk(env, IBM_3350, name="log0", rng=random.Random(0))
        return env, LogProcessor(env, 0, disk, fragments_per_page)

    def test_assembles_until_page_full(self):
        env, lp = self.make_lp(fragments_per_page=3)
        frags = [LogFragment(env, 1, p) for p in range(3)]
        lp.deliver(frags[0])
        lp.deliver(frags[1])
        assert lp.log_pages_written.count == 0
        lp.deliver(frags[2])
        assert lp.log_pages_written.count == 1
        env.run()
        assert all(f.durable.processed for f in frags)

    def test_fragments_become_durable_together(self):
        env, lp = self.make_lp(fragments_per_page=2)
        f1, f2 = LogFragment(env, 1, 1), LogFragment(env, 2, 2)
        lp.deliver(f1)
        lp.deliver(f2)
        env.run()
        assert f1.durable.value == f2.durable.value  # same write completion

    def test_force_flushes_partial_page(self):
        env, lp = self.make_lp(fragments_per_page=10)
        frag = LogFragment(env, 1, 1)
        lp.deliver(frag)
        assert not frag.durable.triggered
        lp.force()
        env.run()
        assert frag.durable.processed
        assert lp.forced_writes.count == 1

    def test_force_with_empty_buffer_is_noop(self):
        env, lp = self.make_lp()
        lp.force()
        assert lp.log_pages_written.count == 0

    def test_physical_writes_two_pages_per_update(self):
        env, lp = self.make_lp()
        frag = LogFragment(env, 1, 1)
        lp.deliver_physical(frag)
        env.run()
        assert frag.durable.processed
        assert lp.log_pages_written.count == 2
        assert lp.disk.pages_written.count == 2

    def test_fragment_wait_recorded(self):
        env, lp = self.make_lp(fragments_per_page=1)
        lp.deliver(LogFragment(env, 1, 1))
        env.run()
        assert lp.fragment_wait_ms.n == 1
        assert lp.fragment_wait_ms.mean > 0


def run_logging(config_log, n=5, max_pages=50, sequential=False, **machine_over):
    config = MachineConfig(**machine_over)
    txns = generate_transactions(
        WorkloadConfig(n_transactions=n, max_pages=max_pages, sequential=sequential),
        config.db_pages,
        RandomStreams(11).stream("workload"),
    )
    arch = ParallelLoggingArchitecture(config_log)
    machine = DatabaseMachine(config, arch)
    return machine.run(txns), txns, arch


class TestLoggingArchitecture:
    def test_every_update_produces_a_fragment(self):
        result, txns, _ = run_logging(LoggingConfig())
        assert result.counter("log_fragments") == sum(t.n_writes for t in txns)

    def test_wal_all_fragments_durable_by_commit(self):
        result, txns, arch = run_logging(LoggingConfig(n_log_processors=2))
        for lp in arch.log_processors:
            assert lp.buffered_fragments == 0  # everything forced by the end

    def test_data_writes_equal_updates(self):
        result, txns, _ = run_logging(LoggingConfig())
        assert result.counter("data_pages_written") == sum(t.n_writes for t in txns)

    def test_log_utilization_reported_per_disk(self):
        result, _, _ = run_logging(LoggingConfig(n_log_processors=3))
        assert "log0" in result.utilizations
        assert "log2" in result.utilizations
        assert "log_disks" in result.utilizations

    def test_physical_mode_writes_two_log_pages_per_update(self):
        result, txns, _ = run_logging(LoggingConfig(mode=LogMode.PHYSICAL))
        assert result.counter("log_pages_written") == 2 * sum(t.n_writes for t in txns)

    def test_through_cache_routing_runs(self):
        result, txns, _ = run_logging(LoggingConfig(routing=FragmentRouting.CACHE))
        assert result.counter("log_fragments") == sum(t.n_writes for t in txns)
        assert "qp_lp_link" not in result.utilizations

    def test_link_utilization_reported_with_link_routing(self):
        result, _, _ = run_logging(LoggingConfig(routing=FragmentRouting.LINK))
        assert "qp_lp_link" in result.utilizations

    def test_fragments_spread_across_log_processors(self):
        _, _, arch = run_logging(
            LoggingConfig(n_log_processors=3, selection=SelectionPolicy.CYCLIC),
            n=6,
            max_pages=100,
        )
        received = [lp.fragments_received.count for lp in arch.log_processors]
        assert all(count > 0 for count in received)

    def test_describe_mentions_configuration(self):
        arch = ParallelLoggingArchitecture(
            LoggingConfig(n_log_processors=2, mode=LogMode.PHYSICAL)
        )
        assert "physical" in arch.describe()
        assert "2 lp" in arch.describe()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoggingConfig(n_log_processors=0)
        with pytest.raises(ValueError):
            LoggingConfig(fragment_bytes=0)

    def test_fragments_per_log_page(self):
        assert LoggingConfig(fragment_bytes=600).fragments_per_log_page == 6
        assert LoggingConfig(fragment_bytes=8192).fragments_per_log_page == 1
