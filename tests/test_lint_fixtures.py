"""The vacuous-rule guard: every flow-sensitive rule fires on its fixture.

Each directory under ``tests/fixtures/lint/`` is a miniature source tree
(files stored with a ``.py.txt`` suffix so neither pytest nor the real
lint run collects them).  ``<rule>_bad`` trees must produce at least one
finding from that rule — if a refactor of the CFG/dataflow/call-graph
layer silently turns the rule into a no-op, this suite fails, not the
production lint gate.  ``<rule>_good`` trees must stay clean, pinning the
false-positive boundary of the same discipline.
"""

import shutil
from pathlib import Path

import pytest

from repro.lint.engine import LintEngine

FIXTURE_ROOT = Path(__file__).resolve().parent / "fixtures" / "lint"


def _cases(suffix):
    return sorted(
        path.name
        for path in FIXTURE_ROOT.iterdir()
        if path.is_dir() and path.name.endswith(suffix)
    )


def _rule_of(case):
    return case.rsplit("_", 1)[0].upper()


def _materialize(case, tmp_path):
    """Copy the fixture tree into tmp, restoring the ``.py`` suffixes."""
    target = tmp_path / case
    shutil.copytree(FIXTURE_ROOT / case, target)
    for stored in sorted(target.rglob("*.py.txt")):
        stored.rename(stored.with_name(stored.name[: -len(".txt")]))
    return target


def _lint(case, tmp_path):
    rule = _rule_of(case)
    tree = _materialize(case, tmp_path)
    engine = LintEngine(rules=[rule], root=str(tree))
    return rule, engine.run([str(tree)])


def test_fixture_corpus_present():
    bad, good = _cases("_bad"), _cases("_good")
    assert bad, "no bad fixtures found — the guard is itself vacuous"
    assert {_rule_of(c) for c in bad} >= {
        "PROTO01",
        "PROTO02",
        "FP01",
        "TR02",
        "RNG01",
    }, "every flow-sensitive rule needs a bad fixture"
    assert {_rule_of(c) for c in good} == {_rule_of(c) for c in bad}


@pytest.mark.parametrize("case", _cases("_bad"))
def test_bad_fixture_fires(case, tmp_path):
    rule, findings = _lint(case, tmp_path)
    fired = [f for f in findings if f.rule == rule]
    assert fired, (
        f"{case}: rule {rule} produced no finding on its bad fixture "
        f"(all findings: {[f.as_dict() for f in findings]})"
    )
    assert not [f for f in findings if f.rule == "PARSE"], "fixture must parse"


@pytest.mark.parametrize("case", _cases("_good"))
def test_good_fixture_clean(case, tmp_path):
    rule, findings = _lint(case, tmp_path)
    assert not findings, (
        f"{case}: rule {rule} flagged disciplined code: "
        f"{[f.as_dict() for f in findings]}"
    )
