"""Fault-free same-seed traces are byte-identical across PRs.

The repo's determinism contract: adding a subsystem (here, the integrity
layer) must not perturb a corruption-free run — every random draw comes
from a named stream, the ``corrupt`` stream is created lazily, and the
scrubber is off by default.  These md5 constants were captured from the
pre-integrity tree; a mismatch means some new code drew from (or
reordered) a shared stream on the clean path.

If a future PR *intentionally* changes the simulation (new spans, new
timing), regenerate the constants with the recipe in ``_trace_hash`` and
say so in that PR's description.
"""

import hashlib
import json

import pytest

from repro import (
    DatabaseMachine,
    MachineConfig,
    WorkloadConfig,
    generate_transactions,
)
from repro.registry import REGISTRY, machine_overrides
from repro.sim import RandomStreams
from repro.trace import Tracer, to_chrome_trace

#: md5 of the sorted chrome-trace JSON, captured before the integrity PR.
EXPECTED = {
    "bare": "48a10a9ed96f2f85331d4911ef5bed82",
    "wal": "dbf5fa0deb5fba295a02b302a2bd325f",
    "shadow": "adece3afc70690e98ba77f78e3f9bc37",
    "versions": "1c37e76f462fcb750570b1e3565358d3",
    "overwrite": "c252443afbb71b5b461f1baca02d9a6b",
    "differential": "27ad4d3230c0b29627c11bb73b00f941",
    "command": "baa9c94f11f453e14f885ea5ab8e7869",
    "redo": "b18f2c7f7bc9ed00655b8d812df14113",
}


def _trace_hash(name: str) -> str:
    config = MachineConfig(seed=1985, mpl=2, **machine_overrides(name))
    transactions = generate_transactions(
        WorkloadConfig(n_transactions=6, max_pages=30),
        config.db_pages,
        RandomStreams(1985).stream("workload"),
    )
    machine = DatabaseMachine(config, REGISTRY[name].sim(), tracer=Tracer())
    machine.run(transactions)
    blob = json.dumps(to_chrome_trace(machine.tracer), sort_keys=True).encode()
    return hashlib.md5(blob).hexdigest()


def test_registry_covered():
    assert set(EXPECTED) == set(REGISTRY), "new architecture: add its hash"


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fault_free_trace_unchanged(name):
    assert _trace_hash(name) == EXPECTED[name]
