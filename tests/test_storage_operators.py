"""Tests for relational operators over differential-file views."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import DifferentialFileManager
from repro.storage.operators import (
    difference,
    intersection,
    join,
    parallel_join,
    partition,
    project,
    select,
    union,
)


@pytest.fixture
def manager():
    m = DifferentialFileManager()
    tid = m.begin()
    for row in (("alice", 1, "eng"), ("bob", 2, "eng"), ("carol", 3, "ops")):
        m.insert(tid, "emp", row)
    for row in (("eng", "building-1"), ("ops", "building-2")):
        m.insert(tid, "dept", row)
    m.commit(tid)
    return m


class TestUnaryOperators:
    def test_select(self, manager):
        rows = select(manager, "emp", lambda r: r[2] == "eng")
        assert rows == {("alice", 1, "eng"), ("bob", 2, "eng")}

    def test_select_sees_deletions(self, manager):
        tid = manager.begin()
        manager.delete(tid, "emp", ("bob", 2, "eng"))
        manager.commit(tid)
        rows = select(manager, "emp", lambda r: r[2] == "eng")
        assert rows == {("alice", 1, "eng")}

    def test_select_read_your_writes(self, manager):
        tid = manager.begin()
        manager.insert(tid, "emp", ("dave", 4, "eng"))
        with_txn = select(manager, "emp", lambda r: r[2] == "eng", tid=tid)
        committed = select(manager, "emp", lambda r: r[2] == "eng")
        assert ("dave", 4, "eng") in with_txn
        assert ("dave", 4, "eng") not in committed
        manager.abort(tid)

    def test_project(self, manager):
        names = project(manager, "emp", (0,))
        assert names == {("alice",), ("bob",), ("carol",)}

    def test_project_deduplicates(self, manager):
        depts = project(manager, "emp", (2,))
        assert depts == {("eng",), ("ops",)}


class TestBinaryOperators:
    def test_union_difference_intersection(self, manager):
        tid = manager.begin()
        manager.insert(tid, "a", (1,))
        manager.insert(tid, "a", (2,))
        manager.insert(tid, "b", (2,))
        manager.insert(tid, "b", (3,))
        manager.commit(tid)
        assert union(manager, "a", "b") == {(1,), (2,), (3,)}
        assert difference(manager, "a", "b") == {(1,)}
        assert intersection(manager, "a", "b") == {(2,)}

    def test_join(self, manager):
        rows = join(manager, "emp", "dept", left_col=2, right_col=0)
        assert ("alice", 1, "eng", "eng", "building-1") in rows
        assert ("carol", 3, "ops", "ops", "building-2") in rows
        assert len(rows) == 3

    def test_join_respects_view_semantics(self, manager):
        tid = manager.begin()
        manager.delete(tid, "dept", ("eng", "building-1"))
        manager.commit(tid)
        rows = join(manager, "emp", "dept", left_col=2, right_col=0)
        assert len(rows) == 1  # only the ops row joins


class TestParallelStructure:
    def test_partition_is_a_partition(self, manager):
        buckets = partition(manager, "emp", column=2, n_partitions=3)
        all_rows = frozenset().union(*buckets)
        assert all_rows == manager.read_relation("emp")
        assert sum(len(bucket) for bucket in buckets) == 3  # disjoint

    def test_same_key_same_bucket(self, manager):
        buckets = partition(manager, "emp", column=2, n_partitions=4)
        for bucket in buckets:
            depts = {row[2] for row in bucket}
            # All "eng" rows land together.
            if "eng" in depts:
                assert sum(1 for row in bucket if row[2] == "eng") == 2

    def test_partition_validation(self, manager):
        with pytest.raises(ValueError):
            partition(manager, "emp", 0, 0)

    def test_parallel_join_equals_join(self, manager):
        serial = join(manager, "emp", "dept", 2, 0)
        parallel = parallel_join(manager, "emp", "dept", 2, 0, n_partitions=3)
        assert parallel == serial

    @settings(max_examples=30)
    @given(
        left_keys=st.lists(st.integers(min_value=0, max_value=5), max_size=12),
        right_keys=st.lists(st.integers(min_value=0, max_value=5), max_size=12),
        n_partitions=st.integers(min_value=1, max_value=6),
    )
    def test_parallel_join_equivalence_property(
        self, left_keys, right_keys, n_partitions
    ):
        manager = DifferentialFileManager()
        tid = manager.begin()
        for i, key in enumerate(left_keys):
            manager.insert(tid, "l", ("l", i, key))
        for i, key in enumerate(right_keys):
            manager.insert(tid, "r", ("r", i, key))
        manager.commit(tid)
        serial = join(manager, "l", "r", 2, 2)
        parallel = parallel_join(manager, "l", "r", 2, 2, n_partitions)
        assert parallel == serial
