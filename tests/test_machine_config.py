"""Unit tests for machine configuration validation."""

import pytest

from repro.hardware import IBM_3350
from repro.machine import MachineConfig


class TestMachineConfig:
    def test_defaults_match_paper_baseline(self):
        config = MachineConfig()
        assert config.n_query_processors == 25
        assert config.cache_frames == 100
        assert config.n_data_disks == 2
        assert not config.parallel_data_disks
        assert config.disk is IBM_3350

    def test_database_must_fit_usable_region(self):
        with pytest.raises(ValueError):
            MachineConfig(db_pages=10**9)

    def test_reserved_region_geometry(self):
        config = MachineConfig(reserved_cylinders=50)
        assert config.reserved_start_cylinder == 505
        assert config.usable_pages_per_disk == 505 * 120

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MachineConfig(n_query_processors=0)
        with pytest.raises(ValueError):
            MachineConfig(mpl=0)
        with pytest.raises(ValueError):
            MachineConfig(prefetch_window=0)
        with pytest.raises(ValueError):
            MachineConfig(cache_frames=2, mpl=3)

    def test_with_overrides(self):
        config = MachineConfig().with_overrides(n_query_processors=75)
        assert config.n_query_processors == 75
        assert config.cache_frames == 100

    def test_cost_model_override(self):
        from repro.hardware import CostModel

        config = MachineConfig(cost=CostModel(scan_page=1000))
        assert config.cost.scan_page == 1000
