"""Unit tests for machine configuration validation."""

import pytest

from repro.hardware import IBM_3350
from repro.machine import MachineConfig


class TestMachineConfig:
    def test_defaults_match_paper_baseline(self):
        config = MachineConfig()
        assert config.n_query_processors == 25
        assert config.cache_frames == 100
        assert config.n_data_disks == 2
        assert not config.parallel_data_disks
        assert config.disk is IBM_3350

    def test_database_must_fit_usable_region(self):
        with pytest.raises(ValueError):
            MachineConfig(db_pages=10**9)

    def test_reserved_region_geometry(self):
        config = MachineConfig(reserved_cylinders=50)
        assert config.reserved_start_cylinder == 505
        assert config.usable_pages_per_disk == 505 * 120

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MachineConfig(n_query_processors=0)
        with pytest.raises(ValueError):
            MachineConfig(mpl=0)
        with pytest.raises(ValueError):
            MachineConfig(prefetch_window=0)
        with pytest.raises(ValueError):
            MachineConfig(cache_frames=2, mpl=3)

    def test_with_overrides(self):
        config = MachineConfig().with_overrides(n_query_processors=75)
        assert config.n_query_processors == 75
        assert config.cache_frames == 100

    def test_cost_model_override(self):
        from repro.hardware import CostModel

        config = MachineConfig(cost=CostModel(scan_page=1000))
        assert config.cost.scan_page == 1000


class TestResilienceFields:
    def test_defaults(self):
        config = MachineConfig()
        assert not config.mirrored_data_disks
        assert config.mirror_rebuild_io_share == 0.5
        assert config.log_ship_max_attempts == 4
        assert config.log_ship_backoff_ms == 2.0

    def test_round_trip_through_overrides(self):
        config = MachineConfig().with_overrides(
            mirrored_data_disks=True,
            mirror_rebuild_io_share=0.25,
            log_ship_max_attempts=7,
            log_ship_backoff_ms=0.5,
        )
        assert config.mirrored_data_disks
        assert config.mirror_rebuild_io_share == 0.25
        assert config.log_ship_max_attempts == 7
        assert config.log_ship_backoff_ms == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(mirror_rebuild_io_share=0.0)
        with pytest.raises(ValueError):
            MachineConfig(mirror_rebuild_io_share=1.5)
        with pytest.raises(ValueError):
            MachineConfig(log_ship_max_attempts=0)
        with pytest.raises(ValueError):
            MachineConfig(log_ship_backoff_ms=-1.0)
