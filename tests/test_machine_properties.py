"""Property-based tests for the timed machine: invariants that must hold
for every workload, configuration, and recovery architecture."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DatabaseMachine, MachineConfig, WorkloadConfig, generate_transactions
from repro.core import (
    BareArchitecture,
    DifferentialFileArchitecture,
    LoggingConfig,
    OverwritingArchitecture,
    PageTableShadowArchitecture,
    ParallelLoggingArchitecture,
)
from repro.sim import RandomStreams
from repro.workload import TransactionStatus

ARCH_FACTORIES = {
    "bare": BareArchitecture,
    "logging": lambda: ParallelLoggingArchitecture(LoggingConfig()),
    "shadow": PageTableShadowArchitecture,
    "overwriting": OverwritingArchitecture,
    "differential": DifferentialFileArchitecture,
}


def run_machine(arch_name, seed, parallel, sequential, n_txns, max_pages):
    config = MachineConfig(parallel_data_disks=parallel)
    workload = WorkloadConfig(
        n_transactions=n_txns, max_pages=max_pages, sequential=sequential
    )
    transactions = generate_transactions(
        workload, config.db_pages, RandomStreams(seed).stream("workload")
    )
    machine = DatabaseMachine(config, ARCH_FACTORIES[arch_name]())
    result = machine.run(transactions)
    return machine, result, transactions


@settings(max_examples=20, deadline=None)
@given(
    arch_name=st.sampled_from(sorted(ARCH_FACTORIES)),
    seed=st.integers(min_value=0, max_value=10_000),
    parallel=st.booleans(),
    sequential=st.booleans(),
    n_txns=st.integers(min_value=1, max_value=4),
    max_pages=st.integers(min_value=1, max_value=40),
)
def test_machine_invariants(arch_name, seed, parallel, sequential, n_txns, max_pages):
    machine, result, transactions = run_machine(
        arch_name, seed, parallel, sequential, n_txns, max_pages
    )
    # Every transaction commits (no-conflict workloads always terminate).
    assert all(t.status is TransactionStatus.COMMITTED for t in transactions)
    # Accounting invariants.
    assert result.pages_processed == sum(t.pages_processed for t in transactions)
    assert result.counter("data_pages_read") == sum(t.n_reads for t in transactions)
    # Time sanity: completion windows sit inside the makespan.
    for txn in transactions:
        assert txn.start_time is not None and txn.finish_time is not None
        assert 0 <= txn.start_time <= txn.finish_time <= result.makespan_ms + 1e-6
    # Resources fully returned.
    assert machine.cache.free == machine.config.cache_frames
    assert machine.locks._table == {}
    assert machine.qps.busy_count == 0
    # Utilizations are fractions.
    for name, value in result.utilizations.items():
        assert 0.0 <= value <= 1.0 + 1e-9, name


@settings(max_examples=10, deadline=None)
@given(
    arch_name=st.sampled_from(sorted(ARCH_FACTORIES)),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_runs_are_reproducible(arch_name, seed):
    _machine1, first, _ = run_machine(arch_name, seed, False, False, 2, 25)
    _machine2, second, _ = run_machine(arch_name, seed, False, False, 2, 25)
    assert first.makespan_ms == second.makespan_ms
    assert first.mean_completion_ms == second.mean_completion_ms
    assert first.counters == second.counters


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_write_accounting_for_in_place_architectures(seed):
    """Bare, logging, and overwriting write exactly one durable home copy
    per updated page."""
    for arch_name in ("bare", "logging", "overwriting"):
        _machine, result, transactions = run_machine(
            arch_name, seed, False, False, 2, 30
        )
        assert result.counter("data_pages_written") == sum(
            t.n_writes for t in transactions
        ), arch_name
